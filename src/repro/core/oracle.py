"""The AEI oracle: build SDB1 and SDB2, run the same query, compare counts.

This is the "Results Validation" step of Figure 5.  Given a generated
database specification, the oracle

1. materialises SDB1 in a fresh connection to the system under test;
2. canonicalises every geometry and applies one shared affine transformation
   to produce SDB2 (Definition 3.4 makes the two databases Affine Equivalent
   Inputs for every topological query);
3. instantiates the query template and executes it against both databases;
4. reports a :class:`Discrepancy` whenever the two row counts differ.

Semantic errors raised by the SDBMS (invalid geometries) are ignored, and
crashes are converted into :class:`CrashReport` records, mirroring how the
paper's campaign distinguishes logic bugs from crash bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import EngineCrash, ReproError, SemanticGeometryError
from repro.geometry import load_wkt
from repro.core.affine import AffineTransformation, random_affine_transformation
from repro.core.canonical import canonicalize
from repro.core.generator import DatabaseSpec
from repro.core.queries import QueryTemplate, TopologicalQuery
from repro.engine.database import SpatialDatabase


@dataclass
class Discrepancy:
    """A logic-bug candidate: the same AEI query returned different counts."""

    query: TopologicalQuery
    count_original: int
    count_followup: int
    original_statements: list[str]
    followup_statements: list[str]
    transformation: AffineTransformation
    triggered_bug_ids: tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.query.sql()} returned {self.count_original} on SDB1 but "
            f"{self.count_followup} on SDB2 ({self.transformation.describe()})"
        )


@dataclass
class CrashReport:
    """A crash-bug candidate: the engine raised EngineCrash."""

    statement: str
    message: str
    bug_id: str | None = None


@dataclass
class OracleOutcome:
    """Everything one oracle invocation produced."""

    discrepancies: list[Discrepancy] = field(default_factory=list)
    crashes: list[CrashReport] = field(default_factory=list)
    queries_run: int = 0
    errors_ignored: int = 0


class AEIOracle:
    """Validates a system under test with Affine Equivalent Inputs."""

    def __init__(
        self,
        database_factory,
        rng: random.Random | None = None,
        canonicalize_followup: bool = True,
    ):
        """``database_factory`` returns a *fresh* connection to the system
        under test each time it is called (the oracle needs two databases per
        round)."""
        self.database_factory = database_factory
        self.rng = rng or random.Random()
        self.canonicalize_followup = canonicalize_followup

    # ------------------------------------------------------------------ steps
    def build_followup_spec(
        self, spec: DatabaseSpec, transformation: AffineTransformation
    ) -> DatabaseSpec:
        """Canonicalise and affine-transform every geometry of a spec."""
        followup = DatabaseSpec(tables={})
        for table, wkts in spec.tables.items():
            transformed = []
            for wkt in wkts:
                geometry = load_wkt(wkt)
                if self.canonicalize_followup:
                    geometry = canonicalize(geometry)
                transformed.append(transformation.apply(geometry).wkt)
            followup.tables[table] = transformed
        return followup

    def materialise(self, spec: DatabaseSpec) -> SpatialDatabase:
        """Create the tables and rows of a spec in a fresh connection."""
        database = self.database_factory()
        for statement in spec.create_statements():
            database.execute(statement)
        return database

    # ------------------------------------------------------------------- run
    def check(
        self,
        spec: DatabaseSpec,
        query_count: int = 10,
        transformation: AffineTransformation | None = None,
    ) -> OracleOutcome:
        """Run ``query_count`` random template queries over an AEI pair."""
        outcome = OracleOutcome()
        transformation = transformation or random_affine_transformation(self.rng)
        followup_spec = self.build_followup_spec(spec, transformation)

        try:
            original = self.materialise(spec)
            followup = self.materialise(followup_spec)
        except EngineCrash as crash:
            outcome.crashes.append(
                CrashReport(statement="<database construction>", message=str(crash), bug_id=crash.bug_id)
            )
            return outcome
        except ReproError:
            outcome.errors_ignored += 1
            return outcome

        template = QueryTemplate(original.dialect, self.rng)
        tables = spec.table_names()
        for _ in range(query_count):
            query = template.random_query(tables, include_distance_predicates=False)
            outcome.queries_run += 1
            before_original = len(original.fault_plan.triggered)
            before_followup = len(followup.fault_plan.triggered)
            try:
                count_original = original.query_value(query.sql())
                count_followup = followup.query_value(query.sql())
            except EngineCrash as crash:
                outcome.crashes.append(
                    CrashReport(statement=query.sql(), message=str(crash), bug_id=crash.bug_id)
                )
                continue
            except SemanticGeometryError:
                outcome.errors_ignored += 1
                continue
            except ReproError:
                outcome.errors_ignored += 1
                continue
            if count_original != count_followup:
                newly_triggered = (
                    original.fault_plan.triggered[before_original:]
                    + followup.fault_plan.triggered[before_followup:]
                )
                outcome.discrepancies.append(
                    Discrepancy(
                        query=query,
                        count_original=count_original,
                        count_followup=count_followup,
                        original_statements=spec.create_statements(),
                        followup_statements=followup_spec.create_statements(),
                        transformation=transformation,
                        triggered_bug_ids=tuple(dict.fromkeys(newly_triggered)),
                    )
                )
        return outcome
