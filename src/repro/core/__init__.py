"""Spatter core: the paper's primary contribution.

The pipeline mirrors Figure 5 of the paper:

1. **Geometry-aware generation** (:mod:`repro.core.generator`): a spatial
   database SDB1 is populated with geometries produced by the random-shape
   strategy and the derivative strategy (Algorithm 1).
2. **Affine Equivalent Inputs construction** (:mod:`repro.core.affine`,
   :mod:`repro.core.canonical`): every geometry is canonicalised and then
   transformed with one shared integer mapping matrix (Algorithm 2),
   producing SDB2.
3. **Results validation** (:mod:`repro.core.oracle`): the same COUNT query
   template is instantiated against SDB1 and SDB2; differing counts reveal a
   logic bug.

:mod:`repro.core.campaign` drives the three steps in a loop, records
discrepancies and crashes, reduces and deduplicates them — the automated
version of the paper's four-month testing campaign.
"""

from repro.core.affine import AffineTransformation, random_affine_transformation
from repro.core.canonical import canonicalize
from repro.core.generator import GeneratorConfig, GeometryAwareGenerator
from repro.core.oracle import AEIOracle, Discrepancy
from repro.core.campaign import CampaignConfig, CampaignResult, TestingCampaign
from repro.core.parallel import ParallelCampaign, run_campaign

__all__ = [
    "AffineTransformation",
    "random_affine_transformation",
    "canonicalize",
    "GeneratorConfig",
    "GeometryAwareGenerator",
    "AEIOracle",
    "Discrepancy",
    "TestingCampaign",
    "CampaignConfig",
    "CampaignResult",
    "ParallelCampaign",
    "run_campaign",
]
