"""Feedback-guided allocation of the round query budget across arms.

The paper evaluates Spatter by unique bugs found per wall-clock budget, and
the measured per-scenario yield spread is extreme (``join-chain`` finds 11
unique bugs at 0.48 rounds/s while the metric scenarios find 0 at 150+
rounds/s — see ``BENCH_scenario_throughput.json``), yet the static
:func:`repro.core.oracle.allocate_query_budget` split spends the same
budget on every scenario each round.  This module closes that loop with a
bandit: each *arm* is one (scenario | oracle-family) unit drawn from the
existing registries, its *reward stream* is the marginal number of new
dedup-signature keys (:func:`repro.core.dedup.signature_identity` space)
per query spent — fed from the campaign's :class:`~repro.core.dedup.
Deduplicator` — and the round budget is re-apportioned every round toward
the arms whose posterior novelty rate is highest.  This is the scheduler-
layer form of clause-guided fuzzing (SQLaser): steer generation toward the
query shapes that are still producing previously-unseen behaviour.

Determinism contract:

* The bandit consumes **no wall-clock feedback** — rewards are counted per
  query, never per second — and draws every Thompson sample from its own
  :class:`random.Random` seeded from ``(campaign seed, shard index, shard
  count)``.  A campaign with a fixed ``(seed, shards)`` split therefore
  produces the identical allocation sequence, finding stream and
  ``scheduler_stats`` whatever the worker count, machine or load (the same
  worker-invariance guarantee the static split has).
* Each shard's bandit learns from its *own* round stream (shard *k* of *n*
  sees the rewards of global rounds ``k, k+n, ...``), and the per-arm
  statistics merge across shards by summation — exactly like
  ``queries_by_scenario``.  The static scheduler is additionally
  shard-count invariant (any split replays the serial rounds byte for
  byte); the bandit is feedback-driven, so its *allocations* depend on the
  stream it observed — ``docs/SCHEDULER.md`` spells out both contracts.

The allocator is Thompson sampling over a Beta posterior: arm *a* with
``q`` queries spent and ``v`` novel signatures observed holds
``Beta(v + 1, q - v + 1)``; each unit of budget goes to the arm with the
highest sampled rate.  An exploration floor (one query per arm per round,
budget permitting) keeps every arm measurable, so an arm whose yield
*becomes* nonzero later (stateful engine bugs) can still recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: arm-name prefixes: one arm per metamorphic scenario of the AEI pass and
#: one per single-database oracle family.
SCENARIO_ARM_PREFIX = "scenario:"
ORACLE_ARM_PREFIX = "oracle:"

#: the selectable scheduler names (``CampaignConfig.scheduler``).
STATIC_SCHEDULER = "static"
BANDIT_SCHEDULER = "bandit"
SCHEDULER_NAMES = (STATIC_SCHEDULER, BANDIT_SCHEDULER)


def scenario_arm(name: str) -> str:
    """The arm id of one metamorphic scenario (AEI pass unit)."""
    return f"{SCENARIO_ARM_PREFIX}{name}"


def oracle_arm(name: str) -> str:
    """The arm id of one single-database oracle family."""
    return f"{ORACLE_ARM_PREFIX}{name}"


@dataclass
class ArmStats:
    """Cumulative bookkeeping of one (scenario | oracle) arm."""

    #: rounds in which the arm received a nonzero budget.
    pulls: int = 0
    #: queries actually executed by the arm (errors shrink this below the
    #: allocated budget; rewards are rated against what actually ran).
    queries: int = 0
    #: marginal new dedup-signature keys the arm's findings contributed.
    novel_signatures: int = 0

    @property
    def posterior_mean(self) -> float:
        """Expected novelty rate under the Beta(v+1, q-v+1) posterior."""
        return (self.novel_signatures + 1) / (self.queries + 2)

    def as_dict(self) -> dict:
        """Plain-data form carried on ``CampaignResult.scheduler_stats``."""
        return {
            "pulls": self.pulls,
            "queries": self.queries,
            "novel_signatures": self.novel_signatures,
            "posterior": self.posterior_mean,
        }


def merge_scheduler_stats(left: dict, right: dict) -> dict:
    """Merge two ``scheduler_stats`` mappings (shard results) by summation.

    Counters add exactly like ``queries_by_scenario``; the posterior summary
    is re-derived from the merged counters, which is what one bandit that
    had observed both reward streams would report.  Arm order: left-then-
    right first appearance, matching the signature-merge convention.
    """
    merged: dict[str, dict] = {}
    for stats in (left, right):
        for arm, row in stats.items():
            if arm not in merged:
                merged[arm] = {"pulls": 0, "queries": 0, "novel_signatures": 0}
            for key in ("pulls", "queries", "novel_signatures"):
                merged[arm][key] += row.get(key, 0)
    for row in merged.values():
        row["posterior"] = (row["novel_signatures"] + 1) / (row["queries"] + 2)
    return merged


@dataclass
class BanditScheduler:
    """Seeded Thompson-sampling allocator over signature-novelty rewards.

    ``arms`` is the stable arm list (registry order); ``seed`` pins the
    Thompson draw stream.  The scheduler is plain state plus a seeded RNG,
    so a campaign instance can rebuild it in whatever process its shard
    lands in.
    """

    arms: tuple[str, ...]
    seed: str = "0"
    stats: dict[str, ArmStats] = field(default_factory=dict)

    def __post_init__(self):
        if not self.arms:
            raise ValueError("a bandit scheduler needs at least one arm")
        if len(set(self.arms)) != len(self.arms):
            raise ValueError("scheduler arms must be unique")
        for arm in self.arms:
            self.stats.setdefault(arm, ArmStats())
        #: the Thompson draw stream; deterministic per (seed, shard split)
        #: and never shared with the round RNG, so enabling the trace or
        #: reading stats cannot perturb query generation.
        self._rng = random.Random(f"{self.seed}|bandit")

    # ------------------------------------------------------------ allocation
    def allocate(self, budget: int) -> dict[str, int]:
        """Split one round's query budget across the arms.

        Every arm first receives an exploration floor of one query (while
        budget remains, in arm order); each remaining unit goes to the arm
        whose Beta posterior yields the highest sampled novelty rate.  The
        returned budgets always sum to ``max(0, budget)``.
        """
        allocation = {arm: 0 for arm in self.arms}
        remaining = max(0, budget)
        for arm in self.arms:  # exploration floor
            if remaining <= 0:
                break
            allocation[arm] += 1
            remaining -= 1
        for _ in range(remaining):
            best_arm = None
            best_sample = -1.0
            for arm in self.arms:
                stats = self.stats[arm]
                sample = self._rng.betavariate(
                    stats.novel_signatures + 1,
                    max(1, stats.queries - stats.novel_signatures + 1),
                )
                if sample > best_sample:
                    best_arm, best_sample = arm, sample
            allocation[best_arm] += 1
        return allocation

    def posterior_inputs(self) -> dict[str, dict]:
        """The per-arm posterior state an allocation decision is based on
        (recorded verbatim in the ``allocation`` trace event)."""
        return {arm: self.stats[arm].as_dict() for arm in self.arms}

    # -------------------------------------------------------------- feedback
    def observe(self, arm: str, queries: int, novel_signatures: int) -> None:
        """Fold one arm-pass outcome into the posterior.

        ``queries`` is what the pass actually executed and
        ``novel_signatures`` how many previously-unseen dedup-signature
        keys its findings contributed (the Deduplicator's delta).
        """
        if arm not in self.stats:
            raise KeyError(f"unknown scheduler arm {arm!r}")
        stats = self.stats[arm]
        if queries > 0:
            stats.pulls += 1
        stats.queries += queries
        stats.novel_signatures += novel_signatures

    def stats_dict(self) -> dict[str, dict]:
        """Per-arm statistics in ``CampaignResult.scheduler_stats`` form."""
        return {arm: self.stats[arm].as_dict() for arm in self.arms}


def resolve_scheduler_name(name: str) -> str:
    """Validate a ``CampaignConfig.scheduler`` value (case-insensitive)."""
    key = str(name).strip().lower()
    if key not in SCHEDULER_NAMES:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(SCHEDULER_NAMES)}"
        )
    return key
