"""Parallel sharded campaign orchestration.

The paper's campaigns are throughput-bound: unique-bugs-found over a fixed
wall-clock budget (Figure 8a) grows with how many generation/validation
rounds the tester completes.  The serial :class:`~repro.core.campaign.
TestingCampaign` leaves every core but one idle; this module shards one
campaign across a ``multiprocessing`` worker pool and merges the shard
results back into a single :class:`~repro.core.campaign.CampaignResult`.

Design:

* **Deterministic sharding.**  Rounds are independently seeded (see
  :func:`repro.core.campaign.round_rng`), so the campaign's round stream can
  be partitioned round-robin: shard *k* of *n* replays global rounds
  ``k, k+n, k+2n, ...``.  ``seed=S, shards=n`` therefore fully determines
  the merged unique-bug set, whatever the worker count, and for a fixed
  total round budget the merged set equals a serial run of the same seed.
* **Mergeable results.**  Each worker returns its shard's
  ``CampaignResult``; :meth:`CampaignResult.combine` unions the deduplicated
  bug sets (earliest detection wins), sums the per-scenario and per-oracle
  query counters (rounds validate the whole metamorphic scenario registry
  and run every active oracle family of :mod:`repro.oracles`, so shard
  results carry ``queries_by_scenario`` and ``queries_by_oracle``
  breakdowns and concatenate their ``oracle_findings``), and re-bases every
  shard's unique-bugs-over-time series onto the orchestrator's shared wall
  clock.
* **Picklable-by-spec backends.**  The config crosses the process boundary
  carrying only the backend *names* (``backend``/``compare_backend``) plus
  plain-data options; every worker re-creates its own
  :class:`~repro.backends.base.Backend` from that spec inside
  ``TestingCampaign.__init__``, so live connections, SQLite handles and
  UDF closures never need to pickle.
* **Graceful degradation.**  With ``workers=1`` — or when the platform
  refuses to give us a process pool (restricted sandboxes without working
  semaphores) — the shards run in-process, preserving the exact merged
  semantics at serial speed.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.core.campaign import CampaignConfig, CampaignResult, TestingCampaign


def shard_rounds(total_rounds: int, shard_index: int, shard_count: int) -> int:
    """How many of ``total_rounds`` global rounds land on one shard.

    Round-robin assignment: shard *k* owns every global round index that is
    congruent to *k* modulo ``shard_count``.
    """
    if total_rounds < 0:
        raise ValueError("total_rounds must be non-negative")
    return len(range(shard_index, total_rounds, shard_count))


def _run_shard(payload: tuple) -> CampaignResult:
    """Worker entry point: run one shard and stamp its clock offset.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method.  ``epoch`` is the orchestrator's campaign start on the
    ``time.monotonic`` clock — system-wide across processes on every
    platform we run on, and immune to the NTP steps and manual clock
    changes that made the old ``time.time`` delta occasionally negative
    (which the clamp then silently folded to zero, skewing merged
    timelines).  The shard-start-minus-epoch difference becomes
    ``start_offset_seconds``, which the merge folds into the
    unique-bugs-over-time rebase; monotonicity of the clock makes it
    non-negative by construction, no clamp needed.

    With a store binding on the payload the shard runs through the
    persistence wrapper instead (:func:`repro.store.runner.run_store_shard`):
    same campaign semantics, plus per-round checkpoint/finding/trace-event
    recording into the findings store, and — when ``resume`` is set —
    restoration of the shard's cursor, deduplicator and scheduler state
    before the first round.  The import is deferred so the classic
    storage-free path never touches the store package.
    """
    # the classic storage-free payload is six elements; the store binding
    # and resume flag ride along only when persistence is in play
    config, shard_index, shard_count, rounds, duration_seconds, epoch, *extra = payload
    binding = extra[0] if len(extra) > 0 else None
    resume = bool(extra[1]) if len(extra) > 1 else False
    offset = time.monotonic() - epoch
    if binding is not None:
        from repro.store.runner import run_store_shard

        result = run_store_shard(
            config, shard_index, shard_count, rounds, duration_seconds, binding, resume
        )
    else:
        campaign = TestingCampaign(config, shard_index=shard_index, shard_count=shard_count)
        result = campaign.run(rounds=rounds, duration_seconds=duration_seconds)
    result.start_offset_seconds = offset
    return result


class ParallelCampaign:
    """Shards one testing campaign across a process pool and merges results.

    The public surface mirrors :class:`TestingCampaign` — construct with a
    :class:`CampaignConfig` (whose ``workers``/``shards`` fields size the
    pool and the round partition) and call :meth:`run` with either a round
    budget or a wall-clock budget.
    """

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(
        self,
        config: CampaignConfig | None = None,
        store=None,
        resume_cursors: "dict[int, int] | None" = None,
    ):
        self.config = config or CampaignConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be at least 1")
        #: optional :class:`repro.store.StoreBinding`: when set, every shard
        #: records findings/trace events and a per-round resume checkpoint
        #: into the persistent findings store (docs/SERVICE.md).
        self.store = store
        #: per-shard ``rounds_completed`` cursors of an interrupted run
        #: (shard index → rounds already done).  ``None`` means a fresh
        #: campaign; a dict — possibly empty, if the kill pre-dated every
        #: first checkpoint — marks this run as a *resume*: round budgets
        #: shrink to each shard's remaining slice and shards with nothing
        #: left still run (budget 0) so their partial results surface in
        #: the merge.
        self.resume_cursors = resume_cursors
        if resume_cursors is not None and store is None:
            raise ValueError("resume_cursors requires a store binding to restore from")

    # ------------------------------------------------------------- plumbing
    @property
    def shard_count(self) -> int:
        """Number of deterministic round streams (see ``CampaignConfig``)."""
        return self.config.shard_count

    def _payloads(
        self,
        rounds: int | None,
        duration_seconds: float | None,
        epoch: float,
        concurrency: int,
    ) -> list[tuple]:
        shard_count = self.shard_count
        shard_duration = duration_seconds
        if duration_seconds is not None and shard_count > concurrency:
            # More shards than concurrently-running workers: shards queue,
            # so giving each the full budget would overshoot the requested
            # wall-clock by ceil(shards/concurrency)x.  Scale the per-shard
            # budget so the whole run still finishes in roughly
            # ``duration_seconds``.
            shard_duration = duration_seconds * max(1, concurrency) / shard_count
        resuming = self.resume_cursors is not None
        payloads = []
        for shard_index in range(shard_count):
            shard_round_budget = (
                None if rounds is None else shard_rounds(rounds, shard_index, shard_count)
            )
            if resuming and shard_round_budget is not None:
                # the shard's cursor reports how far its round stream got;
                # only the remaining slice of the target is left to run.
                done = self.resume_cursors.get(shard_index, 0)
                shard_round_budget = max(0, shard_round_budget - done)
            if shard_round_budget == 0 and not resuming:
                continue  # fewer rounds than shards: trailing shards are idle
            payloads.append(
                (
                    self.config,
                    shard_index,
                    shard_count,
                    shard_round_budget,
                    shard_duration,
                    epoch,
                    self.store,
                    resuming,
                )
            )
        return payloads

    @staticmethod
    def _pool_context():
        """Pick a start method: ``fork`` when available (cheap, no re-import
        of the worker module), the platform default otherwise."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _run_pool(
        self,
        payloads: list[tuple],
        rounds: int | None,
        duration_seconds: float | None,
        epoch: float,
    ) -> list[CampaignResult]:
        workers = min(self.config.workers, len(payloads))
        try:
            context = self._pool_context()
            pool = context.Pool(processes=workers)
        except (OSError, PermissionError, ImportError):
            # No working process pool on this platform (e.g. sandboxes
            # without POSIX semaphores): fall back to in-process shards,
            # which produce the identical merged result, just serially.
            # Only pool *creation* is guarded — an error raised by campaign
            # code inside a worker must propagate, not silently trigger a
            # full serial re-run.  The shards now run one at a time, so
            # duration budgets are re-split for a concurrency of one.
            return [
                _run_shard(payload)
                for payload in self._payloads(rounds, duration_seconds, epoch, concurrency=1)
            ]
        with pool:
            return pool.map(_run_shard, payloads)

    # ------------------------------------------------------------------ run
    def run(
        self,
        rounds: int | None = None,
        duration_seconds: float | None = None,
    ) -> CampaignResult:
        """Run the sharded campaign and return the merged result.

        ``rounds`` is the *total* round budget across all shards (matching
        what a serial ``TestingCampaign.run(rounds=...)`` would execute);
        ``duration_seconds`` is the wall-clock budget of the whole run:
        with one shard per worker (the default) every shard gets the full
        budget — multiplying round throughput by the worker count — while
        surplus shards split it proportionally so the run still finishes
        on time.
        """
        if rounds is None and duration_seconds is None:
            rounds = 5
        started = time.perf_counter()
        epoch = time.monotonic()
        if self.config.trace_file is not None and self.shard_count > 1:
            # The orchestrator owns the trace file: truncate it once here,
            # then every shard appends (each event stamped with its shard
            # index), so shards never clobber each other's lines.
            with open(self.config.trace_file, "w", encoding="utf-8"):
                pass
        pooled = self.config.workers > 1
        payloads = self._payloads(
            rounds, duration_seconds, epoch, concurrency=self.config.workers if pooled else 1
        )
        if not payloads:
            return CampaignResult(config=self.config, shard_count=self.shard_count)

        if pooled and len(payloads) > 1:
            shard_results = self._run_pool(payloads, rounds, duration_seconds, epoch)
        else:
            shard_results = [_run_shard(payload) for payload in payloads]

        merged = CampaignResult.combine(shard_results)
        # The merged wall clock is what the orchestrator observed, not the
        # per-shard maximum (pool start-up and result transfer count too).
        merged.total_seconds = time.perf_counter() - started
        merged.config = self.config
        merged.shard_count = self.shard_count
        return merged


def run_campaign(
    config: CampaignConfig,
    rounds: int | None = None,
    duration_seconds: float | None = None,
) -> CampaignResult:
    """Run a campaign with the driver the config asks for.

    The single entry point the CLI and the benchmarks use: configs with
    ``workers > 1`` or an explicit shard split get the parallel
    orchestrator, everything else the classic serial driver (whose result
    carries identical semantics).
    """
    if config.workers > 1 or (config.shards or 1) > 1:
        return ParallelCampaign(config).run(rounds=rounds, duration_seconds=duration_seconds)
    return TestingCampaign(config).run(rounds=rounds, duration_seconds=duration_seconds)
