"""Bug-inducing test case reduction (delta debugging).

Before reporting, the paper reduces each discrepancy-inducing pair of
statement sequences automatically (citing Zeller & Hildebrandt's
delta-debugging) and then manually.  This module implements the automatic
part along two axes:

* **row-level ddmin** (:meth:`TestCaseReducer.reduce`): repeatedly remove
  geometries from the generated database while the discrepancy persists,
  yielding the minimal spec that still triggers the differing counts;
* **IR-level ddmin** (:meth:`TestCaseReducer.reduce_query`): shrink the
  failing *query plan* itself — drop trailing join arms, drop the WHERE
  predicate, shrink integer thresholds, and collapse embedded geometry
  literals to single points — while the discrepancy persists.  Query
  simplifications apply to the original and follow-up plans in lockstep
  (via :func:`repro.core.qir.replace_literal`'s shared literal order), so
  every candidate is still a well-formed AEI pair.

:meth:`TestCaseReducer.minimize` chains both passes (query first, then
rows), which is what the CLI's ``--reduce`` flag emits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import EngineCrash, ReproError
from repro.core.affine import AffineTransformation
from repro.core.generator import DatabaseSpec
from repro.core.qir import (
    GeometryLiteral,
    IntLiteral,
    Select,
    literals,
    replace_literal,
)


@dataclass
class ReducedCase:
    """The outcome of reduction: the minimal spec and its differing counts."""

    spec: DatabaseSpec
    query: Any  # TopologicalQuery or ScenarioQuery
    count_original: Any
    count_followup: Any
    removed_geometries: int
    #: IR simplification steps applied to the query (0 when the query was
    #: already minimal or carried no IR).
    simplified_query_steps: int = 0


class TestCaseReducer:
    """ddmin-style reduction over the rows and the query of a failing case.

    Works on any scalar scenario query: the query's SDB1 statement runs on
    the candidate spec, the SDB2 statement (possibly carrying transformed
    literals) on the candidate's follow-up, and the candidate keeps failing
    while the observed SDB2 value differs from the expected one.  Pass the
    discrepancy's :class:`~repro.scenarios.base.Scenario` for covariant
    scenarios (metrics) — it supplies the expectation function, the match
    tolerance and the follow-up canonicalization choice; without one the
    expectation is plain equality over a canonicalised follow-up, the
    original oracle's check.
    """

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, oracle, max_rounds: int = 10, scenario=None):
        """``oracle`` is an :class:`~repro.core.oracle.AEIOracle`."""
        self.oracle = oracle
        self.max_rounds = max_rounds
        self.scenario = scenario
        #: transformation of the case being reduced (set by reduce_query;
        #: geometry-literal shrinking derives follow-up literals from it).
        self._transformation: AffineTransformation | None = None

    # ----------------------------------------------------------------- checks
    def _render_pair(self, query: Any) -> tuple[str, str]:
        """Both statements of the pair, rendered for the oracle's backend."""
        capabilities = self.oracle.capabilities
        if hasattr(query, "render_original"):
            return query.render_original(capabilities), query.render_followup(capabilities)
        # Legacy TopologicalQuery surface: followup_sql() is the SDB2
        # statement (and raises for distance queries, whose follow-up needs
        # a scaled threshold this object cannot produce).
        followup = query.followup_sql() if hasattr(query, "followup_sql") else None
        original = query.render(capabilities) if hasattr(query, "render") else query.sql()
        if followup is None or followup == query.sql():
            # same plan on both sides: reuse the dialect-exact render
            followup = original
        return original, followup

    def _still_fails(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> tuple[bool, Any, Any]:
        """Re-run one query over an AEI pair built from the candidate spec."""
        canonicalize_spec = None
        if self.scenario is not None and not self.scenario.canonicalize_followup:
            canonicalize_spec = False
        followup_spec = self.oracle.build_followup_spec(
            spec, transformation, canonicalize_spec=canonicalize_spec
        )
        sql_original, sql_followup = self._render_pair(query)
        try:
            original = self.oracle.materialise(spec)
            followup = self.oracle.materialise(followup_spec)
            count_original = original.query_value(sql_original)
            count_followup = followup.query_value(sql_followup)
        except (EngineCrash, ReproError):
            return False, 0, 0
        if self.scenario is not None:
            expected = self.scenario.expected_followup(
                query, count_original, transformation
            )
            fails = not self.scenario.results_match(expected, count_followup)
        else:
            fails = count_original != count_followup
        return fails, count_original, count_followup

    # ------------------------------------------------------------- row ddmin
    def reduce(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> ReducedCase:
        """Remove as many geometries as possible while the discrepancy holds."""
        if getattr(query, "kind", "scalar") != "scalar":
            raise ValueError(
                "TestCaseReducer only reduces scalar scenario queries; "
                f"got a {query.kind!r}-kind query (reduce row-list scenarios "
                "like knn by shrinking the spec manually)"
            )
        current = DatabaseSpec(tables={name: list(rows) for name, rows in spec.tables.items()})
        failing, count_original, count_followup = self._still_fails(current, query, transformation)
        removed = 0
        if not failing:
            return ReducedCase(current, query, count_original, count_followup, removed)

        for _ in range(self.max_rounds):
            shrunk = False
            for table in list(current.tables):
                rows = current.tables[table]
                index = 0
                while index < len(rows):
                    candidate = DatabaseSpec(
                        tables={
                            name: (list(values) if name != table else values[:index] + values[index + 1 :])
                            for name, values in current.tables.items()
                        }
                    )
                    still_fails, new_original, new_followup = self._still_fails(
                        candidate, query, transformation
                    )
                    if still_fails:
                        current = candidate
                        rows = current.tables[table]
                        count_original, count_followup = new_original, new_followup
                        removed += 1
                        shrunk = True
                    else:
                        index += 1
            if not shrunk:
                break
        return ReducedCase(current, query, count_original, count_followup, removed)

    # -------------------------------------------------------------- IR ddmin
    def _query_candidates(self, query: Any) -> Iterator[Any]:
        """Simplification candidates: structurally smaller AEI query pairs.

        Every candidate rewrites ``ir_original`` and ``ir_followup`` in
        lockstep, so the pair stays a valid metamorphic check; candidates
        that no longer reproduce the discrepancy are simply rejected by the
        caller's re-run.
        """
        ir: Select | None = getattr(query, "ir_original", None)
        followup: Select | None = getattr(query, "ir_followup", None)
        if ir is None or followup is None:
            return
        rebuild = type(query).from_ir

        def candidate(new_ir: Select, new_followup: Select) -> Any:
            return rebuild(
                query.scenario, query.label, new_ir, new_followup, kind=query.kind
            )

        # Drop the trailing join arm (a 3-way chain becomes a 2-way join);
        # later arms may reference earlier bindings but never vice versa,
        # so dropping from the tail keeps the plan well-formed.
        if ir.joins:
            yield candidate(
                dataclasses.replace(ir, joins=ir.joins[:-1]),
                dataclasses.replace(followup, joins=followup.joins[:-1]),
            )
        # Drop the WHERE predicate entirely (COUNT over the bare scan is
        # still affine-invariant — it usually stops failing, which just
        # rejects the candidate).
        if ir.where is not None:
            yield candidate(
                dataclasses.replace(ir, where=None),
                dataclasses.replace(followup, where=None),
            )
        # Shrink literals pairwise.  rewrite_literals-derived pairs share
        # their structure, so literal position i names the same site in
        # both trees.
        original_literals = literals(ir)
        followup_literals = literals(followup)
        if len(original_literals) != len(followup_literals):
            return  # not a rewrite-derived pair; leave literals alone
        for index, (first, second) in enumerate(zip(original_literals, followup_literals)):
            if isinstance(first, IntLiteral) and isinstance(second, IntLiteral):
                # Preserve the pair's scale ratio (the distance scenario's
                # integer threshold scaling) while shrinking toward 1.
                if first.value in (0, 1) or second.value % first.value:
                    continue
                ratio = second.value // first.value
                yield candidate(
                    replace_literal(ir, index, IntLiteral(1)),
                    replace_literal(followup, index, IntLiteral(ratio)),
                )
            elif isinstance(first, GeometryLiteral) and isinstance(second, GeometryLiteral):
                simplified = _simplify_wkt(first.wkt)
                if simplified is None or simplified == first.wkt:
                    continue
                yield candidate(
                    replace_literal(ir, index, GeometryLiteral(simplified)),
                    replace_literal(
                        followup, index, GeometryLiteral(self._followup_literal(simplified))
                    ),
                )

    def _followup_literal(self, wkt: str) -> str:
        """A replacement literal through the oracle's follow-up pipeline."""
        canonicalize_spec = self.oracle.canonicalize_followup
        if self.scenario is not None and not self.scenario.canonicalize_followup:
            canonicalize_spec = False
        return self.oracle._followup_wkt(wkt, self._transformation, canonicalize_spec)

    def reduce_query(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> tuple[Any, int]:
        """Shrink the failing query plan while the discrepancy persists.

        Returns the (possibly unchanged) query and the number of accepted
        simplification steps.  Queries without IR pass through untouched.
        """
        self._transformation = transformation
        current = query
        steps = 0
        progressed = True
        while progressed:
            progressed = False
            for candidate in self._query_candidates(current):
                if self._still_fails(spec, candidate, transformation)[0]:
                    current = candidate
                    steps += 1
                    progressed = True
                    break
        return current, steps

    # ------------------------------------------------------------- combined
    def minimize(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> ReducedCase:
        """Query-level then row-level reduction: the ``--reduce`` pipeline.

        Simplifying the query first makes every row-ddmin re-run cheaper
        (fewer join arms and predicates to evaluate per candidate spec).
        """
        reduced_query, steps = self.reduce_query(spec, query, transformation)
        case = self.reduce(spec, reduced_query, transformation)
        case.simplified_query_steps = steps
        return case


def _simplify_wkt(wkt: str) -> str | None:
    """The smallest meaningful shrink of a geometry literal: its first point."""
    try:
        from repro.geometry import load_wkt
        from repro.geometry.model import Point

        geometry = load_wkt(wkt)
    except Exception:  # noqa: BLE001 - unparsable literals stay as they are
        return None
    if geometry.geom_type == "POINT":
        return None
    coordinates = list(geometry.coordinates())
    if not coordinates:
        return None
    return Point(coordinates[0]).wkt
