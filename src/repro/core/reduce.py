"""Bug-inducing test case reduction (delta debugging).

Before reporting, the paper reduces each discrepancy-inducing pair of
statement sequences automatically (citing Zeller & Hildebrandt's
delta-debugging) and then manually.  This module implements the automatic
part: it repeatedly removes geometries from the generated database while the
discrepancy persists, yielding the minimal spec that still triggers the
differing counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import EngineCrash, ReproError
from repro.core.affine import AffineTransformation
from repro.core.generator import DatabaseSpec


@dataclass
class ReducedCase:
    """The outcome of reduction: the minimal spec and its differing counts."""

    spec: DatabaseSpec
    query: Any  # TopologicalQuery or ScenarioQuery
    count_original: Any
    count_followup: Any
    removed_geometries: int


class TestCaseReducer:
    """ddmin-style reduction over the rows of a generated database.

    Works on any scalar scenario query: the query's SDB1 statement runs on
    the candidate spec, the SDB2 statement (possibly carrying transformed
    literals) on the candidate's follow-up, and the candidate keeps failing
    while the observed SDB2 value differs from the expected one.  Pass the
    discrepancy's :class:`~repro.scenarios.base.Scenario` for covariant
    scenarios (metrics) — it supplies the expectation function, the match
    tolerance and the follow-up canonicalization choice; without one the
    expectation is plain equality over a canonicalised follow-up, the
    original oracle's check.
    """

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, oracle, max_rounds: int = 10, scenario=None):
        """``oracle`` is an :class:`~repro.core.oracle.AEIOracle`."""
        self.oracle = oracle
        self.max_rounds = max_rounds
        self.scenario = scenario

    def _still_fails(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> tuple[bool, Any, Any]:
        """Re-run one query over an AEI pair built from the candidate spec."""
        canonicalize_spec = None
        if self.scenario is not None and not self.scenario.canonicalize_followup:
            canonicalize_spec = False
        followup_spec = self.oracle.build_followup_spec(
            spec, transformation, canonicalize_spec=canonicalize_spec
        )
        followup_sql = getattr(query, "followup_sql", query.sql)()
        try:
            original = self.oracle.materialise(spec)
            followup = self.oracle.materialise(followup_spec)
            count_original = original.query_value(query.sql())
            count_followup = followup.query_value(followup_sql)
        except (EngineCrash, ReproError):
            return False, 0, 0
        if self.scenario is not None:
            expected = self.scenario.expected_followup(
                query, count_original, transformation
            )
            fails = not self.scenario.results_match(expected, count_followup)
        else:
            fails = count_original != count_followup
        return fails, count_original, count_followup

    def reduce(
        self,
        spec: DatabaseSpec,
        query: Any,
        transformation: AffineTransformation,
    ) -> ReducedCase:
        """Remove as many geometries as possible while the discrepancy holds."""
        if getattr(query, "kind", "scalar") != "scalar":
            raise ValueError(
                "TestCaseReducer only reduces scalar scenario queries; "
                f"got a {query.kind!r}-kind query (reduce row-list scenarios "
                "like knn by shrinking the spec manually)"
            )
        current = DatabaseSpec(tables={name: list(rows) for name, rows in spec.tables.items()})
        failing, count_original, count_followup = self._still_fails(current, query, transformation)
        removed = 0
        if not failing:
            return ReducedCase(current, query, count_original, count_followup, removed)

        for _ in range(self.max_rounds):
            shrunk = False
            for table in list(current.tables):
                rows = current.tables[table]
                index = 0
                while index < len(rows):
                    candidate = DatabaseSpec(
                        tables={
                            name: (list(values) if name != table else values[:index] + values[index + 1 :])
                            for name, values in current.tables.items()
                        }
                    )
                    still_fails, new_original, new_followup = self._still_fails(
                        candidate, query, transformation
                    )
                    if still_fails:
                        current = candidate
                        rows = current.tables[table]
                        count_original, count_followup = new_original, new_followup
                        removed += 1
                        shrunk = True
                    else:
                        index += 1
            if not shrunk:
                break
        return ReducedCase(current, query, count_original, count_followup, removed)
