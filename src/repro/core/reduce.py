"""Bug-inducing test case reduction (delta debugging).

Before reporting, the paper reduces each discrepancy-inducing pair of
statement sequences automatically (citing Zeller & Hildebrandt's
delta-debugging) and then manually.  This module implements the automatic
part: it repeatedly removes geometries from the generated database while the
discrepancy persists, yielding the minimal spec that still triggers the
differing counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineCrash, ReproError
from repro.core.affine import AffineTransformation
from repro.core.generator import DatabaseSpec
from repro.core.queries import TopologicalQuery


@dataclass
class ReducedCase:
    """The outcome of reduction: the minimal spec and its differing counts."""

    spec: DatabaseSpec
    query: TopologicalQuery
    count_original: int
    count_followup: int
    removed_geometries: int


class TestCaseReducer:
    """ddmin-style reduction over the rows of a generated database."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, oracle, max_rounds: int = 10):
        """``oracle`` is an :class:`~repro.core.oracle.AEIOracle`."""
        self.oracle = oracle
        self.max_rounds = max_rounds

    def _still_fails(
        self,
        spec: DatabaseSpec,
        query: TopologicalQuery,
        transformation: AffineTransformation,
    ) -> tuple[bool, int, int]:
        """Re-run one query over an AEI pair built from the candidate spec."""
        followup_spec = self.oracle.build_followup_spec(spec, transformation)
        try:
            original = self.oracle.materialise(spec)
            followup = self.oracle.materialise(followup_spec)
            count_original = original.query_value(query.sql())
            count_followup = followup.query_value(query.sql())
        except (EngineCrash, ReproError):
            return False, 0, 0
        return count_original != count_followup, count_original, count_followup

    def reduce(
        self,
        spec: DatabaseSpec,
        query: TopologicalQuery,
        transformation: AffineTransformation,
    ) -> ReducedCase:
        """Remove as many geometries as possible while the discrepancy holds."""
        current = DatabaseSpec(tables={name: list(rows) for name, rows in spec.tables.items()})
        failing, count_original, count_followup = self._still_fails(current, query, transformation)
        removed = 0
        if not failing:
            return ReducedCase(current, query, count_original, count_followup, removed)

        for _ in range(self.max_rounds):
            shrunk = False
            for table in list(current.tables):
                rows = current.tables[table]
                index = 0
                while index < len(rows):
                    candidate = DatabaseSpec(
                        tables={
                            name: (list(values) if name != table else values[:index] + values[index + 1 :])
                            for name, values in current.tables.items()
                        }
                    )
                    still_fails, new_original, new_followup = self._still_fails(
                        candidate, query, transformation
                    )
                    if still_fails:
                        current = candidate
                        rows = current.tables[table]
                        count_original, count_followup = new_original, new_followup
                        removed += 1
                        shrunk = True
                    else:
                        index += 1
            if not shrunk:
                break
        return ReducedCase(current, query, count_original, count_followup, removed)
