"""The typed query IR: one structured query plan, rendered per backend.

The paper's oracle hinges on running *the same* query template over SDB1
and SDB2 with only the literals transformed (Figure 5).  Historically the
reproduction built that template as ad-hoc SQL f-strings in every scenario
and baseline, and the SQLite adapter then un-parsed the dialect quirks back
out of the strings with regexes.  This module makes the template a
first-class value instead — the move PQS makes with its typed expression
AST (Rigger & Su, ICSE 2020) and SQLaser with clause-level query models:

* every query producer builds a small tree of **frozen dataclasses**
  (:class:`Select`, :class:`Join`, :class:`FunctionCall`, typed literals
  including geometry-WKT literals);
* the AEI transformation pipeline rewrites the tree **structurally**
  (:func:`rewrite_literals`) rather than by string substitution, so a
  follow-up query is derived from the original the same way a follow-up
  database is derived from SDB1;
* one renderer per backend dialect turns the tree into SQL, driven by the
  quirk flags of :class:`~repro.backends.base.Capabilities`
  (:class:`RenderStyle`): ``'...'::geometry`` literal casts, self-join
  aliasing, explicit ``NULLS LAST`` on ascending ``ORDER BY`` terms — the
  rules the SQLite adapter's deleted ``translate_sql`` regex layer used to
  re-derive from strings;
* reduction (:mod:`repro.core.reduce`) shrinks failing queries at the AST
  level, and deduplication (:mod:`repro.core.dedup`) keys bug signatures on
  the tree's :func:`structural_signature` instead of string equality.

Every node is immutable and built from plain data, so IR trees pickle
across the parallel orchestrator's process boundary exactly like the SQL
strings they replace.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Union

# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """A column reference, optionally qualified (``t.g`` or bare ``g``)."""

    name: str
    table: str | None = None


@dataclass(frozen=True)
class IntLiteral:
    """An integer literal (distance thresholds; coordinates stay in WKT)."""

    value: int


@dataclass(frozen=True)
class GeometryLiteral:
    """A geometry constant carried as WKT.

    Rendering decides between PostgreSQL's ``'...'::geometry`` cast and the
    bare string literal, per the target's capabilities; the transformation
    pipeline rewrites the ``wkt`` payload structurally via
    :func:`rewrite_literals` instead of substituting text into SQL.
    """

    wkt: str


@dataclass(frozen=True)
class FunctionCall:
    """A (predicate or scalar) function call, e.g. ``st_covers(a.g, b.g)``."""

    name: str
    args: tuple["Expression", ...]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: ``COUNT(*)`` (argument ``None``) or ``SUM(expr)``."""

    function: str
    argument: "Expression | None" = None


@dataclass(frozen=True)
class Not:
    """Logical negation of a predicate (the TLP FALSE partition)."""

    operand: "Expression"


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` (the TLP NULL partition)."""

    operand: "Expression"


Expression = Union[Column, IntLiteral, GeometryLiteral, FunctionCall, Aggregate, Not, IsNull]


# ---------------------------------------------------------------------------
# Query nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM chain, optionally aliased (``t1`` / ``ta AS a``)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name join conditions refer to this source by."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    """A derived table: ``(SELECT ...) AS alias`` (always aliased)."""

    query: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


Source = Union[TableRef, SubquerySource]


@dataclass(frozen=True)
class Join:
    """One ``JOIN <source> ON <condition>`` arm."""

    source: Source
    condition: Expression


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` term (ascending unless stated otherwise)."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    """One SELECT statement: the only statement shape the oracle validates.

    ``sources`` are the comma-separated FROM items (the TLP partitioning
    uses the classic ``FROM t1, t2`` cross join), ``joins`` the explicit
    ``JOIN ... ON`` arms appended after them.
    """

    projection: tuple[Expression, ...]
    sources: tuple[Source, ...]
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None


Node = Union[Expression, Source, Join, OrderItem, Select]


# ---------------------------------------------------------------------------
# Convenience builders (the vocabulary every query producer shares)
# ---------------------------------------------------------------------------


def count_star() -> Aggregate:
    return Aggregate("COUNT")


def count_query(
    sources: tuple[Source, ...],
    joins: tuple[Join, ...] = (),
    where: Expression | None = None,
) -> Select:
    """``SELECT COUNT(*) ...`` — the shape of every counting scenario."""
    return Select(projection=(count_star(),), sources=sources, joins=joins, where=where)


def predicate_call(predicate: str, left: Source | str, right: Source | str,
                   column: str = "g", distance: int | None = None) -> FunctionCall:
    """A topological/distance predicate over two bindings' geometry columns."""
    left_name = left if isinstance(left, str) else left.binding
    right_name = right if isinstance(right, str) else right.binding
    args: tuple[Expression, ...] = (Column(column, left_name), Column(column, right_name))
    if distance is not None:
        args = args + (IntLiteral(distance),)
    return FunctionCall(predicate, args)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

#: the alias given to the earlier occurrence of an unaliased self-join when
#: the target cannot collapse repeated table bindings (kept from the deleted
#: regex layer so rendered SQL is byte-stable across the refactor).
SELF_JOIN_ALIAS = "_spatter_outer"


@dataclass(frozen=True)
class RenderStyle:
    """The dialect quirks a renderer honours, as declared by a backend.

    The flags mirror :class:`~repro.backends.base.Capabilities`; a backend
    adapter never translates SQL — it *declares* its quirks and the renderer
    emits dialect-exact SQL in one pass.
    """

    #: the target parses PostgreSQL ``'...'::geometry`` literal casts.
    geometry_casts: bool = True
    #: the target collapses ``FROM t JOIN t`` to one binding (the in-process
    #: engine's latest-occurrence resolution); targets that reject the
    #: ambiguity get the earlier occurrence aliased instead.
    unaliased_self_joins: bool = True
    #: the target sorts NULL keys last on ascending ORDER BY terms (the
    #: PostgreSQL default); targets that default to NULLS FIRST get an
    #: explicit ``NULLS LAST`` appended to every ascending term.
    nulls_last_by_default: bool = True

    @classmethod
    def for_target(cls, target: Any = None) -> "RenderStyle":
        """Resolve a render target into a style.

        ``target`` may be ``None`` (the canonical PostgreSQL-flavoured
        style every query also uses for reporting), a ``RenderStyle``, or
        anything quacking like a backend ``Capabilities`` descriptor.  A
        bare :class:`~repro.engine.dialects.Dialect` resolves to the
        canonical style: dialect catalogs describe functions, while the
        quirks are a property of the executing backend.
        """
        if target is None:
            return cls()
        if isinstance(target, cls):
            return target
        return cls(
            geometry_casts=getattr(target, "supports_geometry_cast", True),
            unaliased_self_joins=getattr(target, "supports_unaliased_self_join", True),
            nulls_last_by_default=getattr(target, "orders_nulls_last", True),
        )


def escape_string(text: str) -> str:
    """SQL single-quote escaping (the only escape the WKT payloads need)."""
    return text.replace("'", "''")


def render(node: Node, target: Any = None) -> str:
    """Render an IR node as SQL for the given target (see ``RenderStyle``)."""
    style = RenderStyle.for_target(target)
    if isinstance(node, Select):
        return _render_select(node, style)
    return _render_expression(node, style)


def _render_expression(node: Expression, style: RenderStyle) -> str:
    if isinstance(node, Column):
        return f"{node.table}.{node.name}" if node.table else node.name
    if isinstance(node, IntLiteral):
        return str(node.value)
    if isinstance(node, GeometryLiteral):
        literal = f"'{escape_string(node.wkt)}'"
        return f"{literal}::geometry" if style.geometry_casts else literal
    if isinstance(node, FunctionCall):
        arguments = ", ".join(_render_expression(a, style) for a in node.args)
        return f"{node.name}({arguments})"
    if isinstance(node, Aggregate):
        if node.argument is None:
            return f"{node.function}(*)"
        return f"{node.function}({_render_expression(node.argument, style)})"
    if isinstance(node, Not):
        return f"NOT {_render_operand(node.operand, style)}"
    if isinstance(node, IsNull):
        return f"{_render_operand(node.operand, style)} IS NULL"
    raise TypeError(f"not an IR expression: {node!r}")


def _render_operand(operand: Expression, style: RenderStyle) -> str:
    """An operand of NOT / IS NULL, parenthesised when composition needs it.

    Function calls and literals are syntactically atomic; a nested
    ``Not``/``IsNull`` is not — ``NOT p(...) IS NULL`` would parse as
    ``NOT (p(...) IS NULL)`` rather than the intended composition.
    """
    rendered = _render_expression(operand, style)
    if isinstance(operand, (Not, IsNull)):
        return f"({rendered})"
    return rendered


def _render_source(source: Source, style: RenderStyle, forced_alias: str | None = None) -> str:
    if isinstance(source, TableRef):
        alias = source.alias or forced_alias
        return f"{source.name} AS {alias}" if alias else source.name
    if isinstance(source, SubquerySource):
        return f"({_render_select(source.query, style)}) AS {source.alias}"
    raise TypeError(f"not an IR source: {source!r}")


def _self_join_aliases(select: Select, style: RenderStyle) -> dict[int, str]:
    """Forced aliases for repeated unaliased table names, by chain position.

    The in-process engine resolves a repeated table name to its *latest*
    occurrence (the repeated name collapses to one binding with N*M join
    semantics); a target that rejects the ambiguity gets every earlier
    occurrence aliased away, which reproduces exactly that binding
    resolution — the condition's unqualified references keep resolving to
    the last, unaliased occurrence.
    """
    if style.unaliased_self_joins:
        return {}
    chain: list[Source] = list(select.sources) + [join.source for join in select.joins]
    last_position: dict[str, int] = {}
    for position, source in enumerate(chain):
        if isinstance(source, TableRef) and source.alias is None:
            last_position[source.name] = position
    forced: dict[int, str] = {}
    suffix = 0
    for position, source in enumerate(chain):
        if not isinstance(source, TableRef) or source.alias is not None:
            continue
        if last_position[source.name] != position:
            forced[position] = SELF_JOIN_ALIAS if suffix == 0 else f"{SELF_JOIN_ALIAS}{suffix}"
            suffix += 1
    return forced


def _render_select(select: Select, style: RenderStyle) -> str:
    projection = ", ".join(_render_expression(item, style) for item in select.projection)
    forced = _self_join_aliases(select, style)
    from_items = [
        _render_source(source, style, forced.get(position))
        for position, source in enumerate(select.sources)
    ]
    parts = [f"SELECT {projection} FROM {', '.join(from_items)}"]
    offset = len(select.sources)
    for position, join in enumerate(select.joins, start=offset):
        rendered = _render_source(join.source, style, forced.get(position))
        parts.append(f"JOIN {rendered} ON {_render_expression(join.condition, style)}")
    if select.where is not None:
        parts.append(f"WHERE {_render_expression(select.where, style)}")
    if select.order_by:
        terms = []
        for item in select.order_by:
            term = _render_expression(item.expression, style)
            # Mirror the PostgreSQL defaults on targets that invert them:
            # ascending puts NULL keys last, descending puts them first.
            if not item.ascending:
                term += " DESC"
                if not style.nulls_last_by_default:
                    term += " NULLS FIRST"
            elif not style.nulls_last_by_default:
                term += " NULLS LAST"
            terms.append(term)
        parts.append(f"ORDER BY {', '.join(terms)}")
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Structural traversal and rewriting
# ---------------------------------------------------------------------------

_IR_TYPES = (
    Column,
    IntLiteral,
    GeometryLiteral,
    FunctionCall,
    Aggregate,
    Not,
    IsNull,
    TableRef,
    SubquerySource,
    Join,
    OrderItem,
    Select,
)


def transform(node: Node, fn: Callable[[Node], Node]) -> Node:
    """Rebuild an IR tree bottom-up, applying ``fn`` to every node.

    ``fn`` receives each (already rebuilt) node and returns its replacement
    — the identity for nodes it does not care about.  Dataclass fields are
    walked generically, so new node kinds participate without touching this
    function.
    """
    rebuilt_fields: dict[str, Any] = {}
    changed = False
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, _IR_TYPES):
            new_value: Any = transform(value, fn)
        elif isinstance(value, tuple):
            new_value = tuple(
                transform(item, fn) if isinstance(item, _IR_TYPES) else item for item in value
            )
        else:
            new_value = value
        if new_value is not value and new_value != value:
            changed = True
        rebuilt_fields[field.name] = new_value
    rebuilt = dataclasses.replace(node, **rebuilt_fields) if changed else node
    return fn(rebuilt)


def walk(node: Node) -> Iterator[Node]:
    """Every node of an IR tree, depth-first, parents before children."""
    yield node
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, _IR_TYPES):
            yield from walk(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, _IR_TYPES):
                    yield from walk(item)


def rewrite_literals(
    node: Node,
    geometry: Callable[[str], str] | None = None,
    integer: Callable[[int], int] | None = None,
) -> Node:
    """The structural form of the oracle's follow-up rewriting.

    Applies ``geometry`` to every geometry literal's WKT and ``integer`` to
    every integer literal's value, returning a new tree.  This is how a
    scenario derives its SDB2 query from the SDB1 query: the same
    canonicalize-then-transform pipeline the stored geometries go through
    is applied to the query's embedded constants — structurally, never by
    substituting text into SQL.
    """

    def rewrite(n: Node) -> Node:
        if geometry is not None and isinstance(n, GeometryLiteral):
            return GeometryLiteral(geometry(n.wkt))
        if integer is not None and isinstance(n, IntLiteral):
            return IntLiteral(integer(n.value))
        return n

    return transform(node, rewrite)


def literals(node: Node) -> list[IntLiteral | GeometryLiteral]:
    """Every literal of a tree in deterministic walk order.

    Two trees derived from one another by :func:`rewrite_literals` share
    their structure, so position *i* here names the *same* literal site in
    both — which is what lets the reducer shrink an (original, follow-up)
    literal pair in lockstep.
    """
    return [n for n in walk(node) if isinstance(n, (IntLiteral, GeometryLiteral))]


def replace_literal(node: Node, index: int, replacement: IntLiteral | GeometryLiteral) -> Node:
    """Replace the ``index``-th literal (in :func:`literals` order).

    Literals are leaves, so their visit order under the bottom-up
    :func:`transform` matches the document order :func:`literals` reports.
    """
    if not 0 <= index < len(literals(node)):
        raise IndexError(f"literal index {index} out of range")
    state = {"next": 0}

    def rewrite(n: Node) -> Node:
        if isinstance(n, (IntLiteral, GeometryLiteral)):
            position = state["next"]
            state["next"] += 1
            if position == index:
                return replacement
        return n

    return transform(node, rewrite)


# ---------------------------------------------------------------------------
# Structural signatures (deduplication by query shape)
# ---------------------------------------------------------------------------


def structural_signature(node: Node) -> str:
    """A compact shape fingerprint: node kinds and function names only.

    Table names, aliases and literal *values* are anonymised, so two
    findings whose queries differ only in which generated tables or
    constants they mention collapse to one signature — deduplication by
    query structure rather than string equality.  Function names stay
    (case-folded): an ``st_intersects`` miscount and an ``st_covers``
    miscount are different bugs.
    """
    if isinstance(node, Select):
        from_shape = ",".join(structural_signature(s) for s in node.sources)
        join_shape = "".join(
            f"+join({structural_signature(j.source)} on {structural_signature(j.condition)})"
            for j in node.joins
        )
        where_shape = f" where {structural_signature(node.where)}" if node.where else ""
        order_shape = (
            " order " + ",".join(structural_signature(i.expression) for i in node.order_by)
            if node.order_by
            else ""
        )
        limit_shape = " limit" if node.limit is not None else ""
        projection = ",".join(structural_signature(p) for p in node.projection)
        return f"select({projection} from {from_shape}{join_shape}{where_shape}{order_shape}{limit_shape})"
    if isinstance(node, TableRef):
        return "t"
    if isinstance(node, SubquerySource):
        return f"sub[{structural_signature(node.query)}]"
    if isinstance(node, Column):
        return "col"
    if isinstance(node, IntLiteral):
        return "int"
    if isinstance(node, GeometryLiteral):
        return "geom"
    if isinstance(node, FunctionCall):
        arguments = ",".join(structural_signature(a) for a in node.args)
        return f"{node.name.lower()}({arguments})"
    if isinstance(node, Aggregate):
        if node.argument is None:
            return f"{node.function.lower()}(*)"
        return f"{node.function.lower()}({structural_signature(node.argument)})"
    if isinstance(node, Not):
        return f"not({structural_signature(node.operand)})"
    if isinstance(node, IsNull):
        return f"isnull({structural_signature(node.operand)})"
    raise TypeError(f"not an IR node: {node!r}")
