"""Canonicalization (Section 4.3 of the paper).

Canonicalization converts a geometry's representation into an equivalent
canonical form without changing the point set it denotes.  The paper treats
it as the special case of AEI whose mapping matrix is the identity, and it
found several bugs on its own (Listings 5 and 6 were detected through
canonicalised follow-ups).

Two levels are applied:

* **element level** (MULTI and MIXED geometries only): EMPTY removal,
  homogenization (single-element MULTI collapses to its basic type, nested
  collections are flattened), duplicate-element removal, and reordering of
  the elements by dimension;
* **value level** (each basic element): consecutive duplicate coordinate
  removal and deterministic reordering (a LINESTRING is reversed when its
  endpoints compare descending; polygon rings are forced clockwise).

Canonicalization must preserve not only the denoted point set but every
DE-9IM relationship to other geometries.  The element-level rewrites are not
unconditionally safe, because regrouping elements changes how the relate
engine combines their interior/boundary classes:

* merging the LINESTRINGs of a GEOMETRYCOLLECTION into one MULTILINESTRING
  changes which endpoints the *mod-2* rule classifies as boundary (each
  collection element carries its own boundary, while a MULTILINESTRING
  pools endpoint parities), and removing a duplicated open line element
  flips the parity of both of its endpoints;
* merging overlapping POLYGONs into one MULTIPOLYGON trades the
  collection's union (interior-priority) semantics for the area component's
  boundary priority wherever one polygon's ring runs through another's
  interior.

The element-level result is therefore verified against the original by
sampling the arrangement of its segments the same way the relate engine
does (nodes and sub-segment midpoints), and when any classification would
change the geometry falls back to a structure-preserving canonical form
that only applies the value level to each element in place.
"""

from __future__ import annotations

from repro.geometry.model import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    _MultiGeometry,
)
from repro.geometry.primitives import ring_is_clockwise


#: memoised canonical forms keyed by WKT.  The oracle canonicalises every
#: geometry of every generated database, and the derivative strategy reuses
#: geometries across rounds, so repeats are common; the topology-preservation
#: check (which nodes the geometry's segments) makes each miss non-trivial.
_CANONICAL_CACHE: dict[str, Geometry] = {}
_CANONICAL_CACHE_LIMIT = 8192


def clear_canonical_cache() -> None:
    """Drop all memoised canonical forms (used by benchmarks and tests)."""
    _CANONICAL_CACHE.clear()


def canonicalize(geometry: Geometry) -> Geometry:
    """Return the canonical representation of a geometry."""
    if not isinstance(geometry, _MultiGeometry):
        return _canonicalize_basic(geometry)
    key = geometry.wkt
    cached = _CANONICAL_CACHE.get(key)
    if cached is not None:
        return cached
    candidate = _canonicalize_collection(geometry)
    if not _topology_preserved(geometry, candidate):
        candidate = _canonicalize_structure_preserving(geometry)
    if len(_CANONICAL_CACHE) >= _CANONICAL_CACHE_LIMIT:
        _CANONICAL_CACHE.clear()
    _CANONICAL_CACHE[key] = candidate
    return candidate


# --------------------------------------------------------------- element level
def _canonicalize_collection(geometry: _MultiGeometry) -> Geometry:
    # Step 1: flatten nested collections and drop EMPTY elements.
    elements = [element for element in _flatten_elements(geometry) if not element.is_empty]
    # Step 2: canonicalise each surviving element at the value level.
    elements = [_canonicalize_basic(element) for element in elements]
    # Step 3: remove duplicated elements (duplicates identified by shape).
    unique: list[Geometry] = []
    seen: set[str] = set()
    for element in elements:
        key = element.wkt
        if key in seen:
            continue
        seen.add(key)
        unique.append(element)
    # Step 4: reorder elements by dimension (then lexicographically for
    # determinism).
    unique.sort(key=lambda g: (g.dimension, g.wkt))

    if not unique:
        return GeometryCollection.empty()
    # Homogenization: a single element collapses to its basic type; a uniform
    # collection becomes the corresponding MULTI type.
    if len(unique) == 1:
        return unique[0]
    types = {type(element) for element in unique}
    if types == {Point}:
        return MultiPoint(unique)
    if types == {LineString}:
        return MultiLineString(unique)
    if types == {Polygon}:
        return MultiPolygon(unique)
    return GeometryCollection(unique)


def _flatten_elements(geometry: _MultiGeometry) -> list[Geometry]:
    elements: list[Geometry] = []
    for element in geometry.geoms:
        if isinstance(element, _MultiGeometry):
            elements.extend(_flatten_elements(element))
        else:
            elements.append(element)
    return elements


# ------------------------------------------------------- topology preservation
def _count_elements(geometry: Geometry, element_type: type) -> int:
    """Non-empty elements of one basic type, however deeply nested."""
    if isinstance(geometry, element_type):
        return 0 if geometry.is_empty else 1
    if isinstance(geometry, _MultiGeometry):
        return sum(_count_elements(element, element_type) for element in geometry.geoms)
    return 0


def _boundary_endpoints(descriptor) -> set:
    """Union of the mod-2 boundary points over all line components."""
    from repro.topology.labels import LinesComponent

    points = set()
    for component in descriptor.components:
        if isinstance(component, LinesComponent):
            points.update(component.boundary_points)
    return points


def _topology_preserved(original: Geometry, candidate: Geometry) -> bool:
    """True when the element-level rewrite keeps every DE-9IM relationship.

    Regrouping elements can only change point classifications *on* the
    geometry's own segments and isolated points (off-curve points are
    interior/exterior under every grouping), so the check samples the noded
    arrangement of both representations' segments — the same witness set the
    relate engine classifies — and compares the two point locators there.
    The mod-2 line boundary sets are compared as well, because relate reads
    them directly for boundary-dimension entries.
    """
    if (
        _count_elements(original, LineString) < 2
        and _count_elements(original, Polygon) < 2
    ):
        # A single line cannot change endpoint parity and a single polygon
        # cannot gain boundary priority over a sibling: nothing to verify.
        return True
    from repro.topology.labels import TopologyDescriptor
    from repro.topology.noding import midpoint, node_segments

    original_descriptor = TopologyDescriptor(original)
    candidate_descriptor = TopologyDescriptor(candidate)
    if _boundary_endpoints(original_descriptor) != _boundary_endpoints(candidate_descriptor):
        return False
    isolated = (
        original_descriptor.isolated_points() + candidate_descriptor.isolated_points()
    )
    noded = node_segments(
        original_descriptor.segments() + candidate_descriptor.segments(), isolated
    )
    probes = set(isolated)
    for start, end in noded:
        probes.add(start)
        probes.add(end)
        probes.add(midpoint(start, end))
    return all(
        original_descriptor.locate(point) == candidate_descriptor.locate(point)
        for point in probes
    )


def _canonicalize_structure_preserving(geometry: Geometry) -> Geometry:
    """Value-level canonicalization only, keeping the element structure.

    Used when the element-level rewrite would alter the geometry's topology;
    each element is canonicalised in place and the collection type, nesting
    and element order are all preserved.
    """
    if isinstance(geometry, _MultiGeometry):
        elements = [_canonicalize_structure_preserving(element) for element in geometry.geoms]
        return type(geometry)(elements)
    return _canonicalize_basic(geometry)


# ----------------------------------------------------------------- value level
def _canonicalize_basic(geometry: Geometry) -> Geometry:
    if isinstance(geometry, Point):
        return geometry
    if isinstance(geometry, LineString):
        return _canonicalize_linestring(geometry)
    if isinstance(geometry, Polygon):
        return _canonicalize_polygon(geometry)
    if isinstance(geometry, _MultiGeometry):  # nested call from collections
        return _canonicalize_collection(geometry)
    return geometry


def _remove_consecutive_duplicates(points: list) -> list:
    cleaned = []
    for point in points:
        if cleaned and cleaned[-1] == point:
            continue
        cleaned.append(point)
    return cleaned


def _canonicalize_linestring(line: LineString) -> LineString:
    if line.is_empty:
        return LineString.empty()
    points = _remove_consecutive_duplicates(list(line.points))
    if len(points) < 2:
        points = list(line.points)[:2]
    # Reorder by direction: compare endpoints on the x axis then the y axis
    # and reverse the linestring when they are descending.
    first, last = points[0], points[-1]
    if (last.x, last.y) < (first.x, first.y):
        points = list(reversed(points))
    return LineString(points)


def _canonicalize_polygon(polygon: Polygon) -> Polygon:
    if polygon.is_empty:
        return Polygon.empty()
    rings = []
    for ring in polygon.rings():
        cleaned = _remove_consecutive_duplicates(list(ring))
        if cleaned and cleaned[0] != cleaned[-1]:
            cleaned.append(cleaned[0])
        if len(set(cleaned)) < 3:
            # Degenerate ring: keep the original representation untouched so
            # canonicalization never turns a parsable geometry into an error.
            rings.append(list(ring))
            continue
        # Convert every loop to a clockwise orientation.
        interior = cleaned[:-1]
        if not ring_is_clockwise(cleaned):
            interior = list(reversed(interior))
        rings.append(interior + [interior[0]])
    return Polygon(rings[0], rings[1:])
