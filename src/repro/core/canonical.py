"""Canonicalization (Section 4.3 of the paper).

Canonicalization converts a geometry's representation into an equivalent
canonical form without changing the point set it denotes.  The paper treats
it as the special case of AEI whose mapping matrix is the identity, and it
found several bugs on its own (Listings 5 and 6 were detected through
canonicalised follow-ups).

Two levels are applied:

* **element level** (MULTI and MIXED geometries only): EMPTY removal,
  homogenization (single-element MULTI collapses to its basic type, nested
  collections are flattened), duplicate-element removal, and reordering of
  the elements by dimension;
* **value level** (each basic element): consecutive duplicate coordinate
  removal and deterministic reordering (a LINESTRING is reversed when its
  endpoints compare descending; polygon rings are forced clockwise).
"""

from __future__ import annotations

from repro.geometry.model import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    _MultiGeometry,
)
from repro.geometry.primitives import ring_is_clockwise


def canonicalize(geometry: Geometry) -> Geometry:
    """Return the canonical representation of a geometry."""
    if isinstance(geometry, _MultiGeometry):
        return _canonicalize_collection(geometry)
    return _canonicalize_basic(geometry)


# --------------------------------------------------------------- element level
def _canonicalize_collection(geometry: _MultiGeometry) -> Geometry:
    # Step 1: flatten nested collections and drop EMPTY elements.
    elements = [element for element in _flatten_elements(geometry) if not element.is_empty]
    # Step 2: canonicalise each surviving element at the value level.
    elements = [_canonicalize_basic(element) for element in elements]
    # Step 3: remove duplicated elements (duplicates identified by shape).
    unique: list[Geometry] = []
    seen: set[str] = set()
    for element in elements:
        key = element.wkt
        if key in seen:
            continue
        seen.add(key)
        unique.append(element)
    # Step 4: reorder elements by dimension (then lexicographically for
    # determinism).
    unique.sort(key=lambda g: (g.dimension, g.wkt))

    if not unique:
        return GeometryCollection.empty()
    # Homogenization: a single element collapses to its basic type; a uniform
    # collection becomes the corresponding MULTI type.
    if len(unique) == 1:
        return unique[0]
    types = {type(element) for element in unique}
    if types == {Point}:
        return MultiPoint(unique)
    if types == {LineString}:
        return MultiLineString(unique)
    if types == {Polygon}:
        return MultiPolygon(unique)
    return GeometryCollection(unique)


def _flatten_elements(geometry: _MultiGeometry) -> list[Geometry]:
    elements: list[Geometry] = []
    for element in geometry.geoms:
        if isinstance(element, _MultiGeometry):
            elements.extend(_flatten_elements(element))
        else:
            elements.append(element)
    return elements


# ----------------------------------------------------------------- value level
def _canonicalize_basic(geometry: Geometry) -> Geometry:
    if isinstance(geometry, Point):
        return geometry
    if isinstance(geometry, LineString):
        return _canonicalize_linestring(geometry)
    if isinstance(geometry, Polygon):
        return _canonicalize_polygon(geometry)
    if isinstance(geometry, _MultiGeometry):  # nested call from collections
        return _canonicalize_collection(geometry)
    return geometry


def _remove_consecutive_duplicates(points: list) -> list:
    cleaned = []
    for point in points:
        if cleaned and cleaned[-1] == point:
            continue
        cleaned.append(point)
    return cleaned


def _canonicalize_linestring(line: LineString) -> LineString:
    if line.is_empty:
        return LineString.empty()
    points = _remove_consecutive_duplicates(list(line.points))
    if len(points) < 2:
        points = list(line.points)[:2]
    # Reorder by direction: compare endpoints on the x axis then the y axis
    # and reverse the linestring when they are descending.
    first, last = points[0], points[-1]
    if (last.x, last.y) < (first.x, first.y):
        points = list(reversed(points))
    return LineString(points)


def _canonicalize_polygon(polygon: Polygon) -> Polygon:
    if polygon.is_empty:
        return Polygon.empty()
    rings = []
    for ring in polygon.rings():
        cleaned = _remove_consecutive_duplicates(list(ring))
        if cleaned and cleaned[0] != cleaned[-1]:
            cleaned.append(cleaned[0])
        if len(set(cleaned)) < 3:
            # Degenerate ring: keep the original representation untouched so
            # canonicalization never turns a parsable geometry into an error.
            rings.append(list(ring))
            continue
        # Convert every loop to a clockwise orientation.
        interior = cleaned[:-1]
        if not ring_is_clockwise(cleaned):
            interior = list(reversed(interior))
        rings.append(interior + [interior[0]])
    return Polygon(rings[0], rings[1:])
