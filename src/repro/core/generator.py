"""The geometry-aware generator (Algorithm 1 of the paper).

``Generate(N, m)`` creates a spatial database specification with ``m``
tables and ``N`` geometries.  The first geometry always comes from the
random-shape strategy (nothing exists to derive from yet); every subsequent
geometry flips a coin between the random-shape and the derivative strategy.

The generator produces a :class:`DatabaseSpec` — plain table names and WKT
strings — rather than writing into an engine directly, because the AEI
oracle needs to materialise the same specification twice (SDB1 and its
affine-equivalent SDB2).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.core.derive import Deriver
from repro.core.shapes import RandomShapeGenerator, ShapeConfig
from repro.engine.database import SpatialDatabase

#: the statements create_statements() emits, for the round-trip parser.
_CREATE_TABLE = re.compile(r"^CREATE\s+TABLE\s+(?P<table>\w+)\s*\(", re.IGNORECASE)
_INSERT_ROW = re.compile(
    r"^INSERT\s+INTO\s+(?P<table>\w+)\s*\([^)]*\)\s*"
    r"VALUES\s*\((?:\d+\s*,\s*)?'(?P<wkt>.*)'\)\s*$",
    re.IGNORECASE | re.DOTALL,
)


@dataclass
class DatabaseSpec:
    """A generated spatial database: geometry WKTs grouped by table."""

    tables: dict[str, list[str]] = field(default_factory=dict)

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def geometry_count(self) -> int:
        return sum(len(rows) for rows in self.tables.values())

    def all_wkts(self) -> list[str]:
        return [wkt for rows in self.tables.values() for wkt in rows]

    def create_statements(
        self, geometry_column: str = "g", include_ids: bool = False
    ) -> list[str]:
        """The CREATE TABLE / INSERT statements that materialise the spec.

        ``include_ids`` adds a 1-based ``id`` column, stable across an AEI
        pair because both databases are materialised from specs with the
        same row order — which is what lets row-list scenarios (KNN) compare
        result rows by identity instead of by transformed coordinates.
        """
        statements = []
        for table in self.table_names():
            if include_ids:
                statements.append(
                    f"CREATE TABLE {table} (id int, {geometry_column} geometry)"
                )
            else:
                statements.append(f"CREATE TABLE {table} ({geometry_column} geometry)")
            for row_id, wkt in enumerate(self.tables[table], start=1):
                escaped = wkt.replace("'", "''")
                if include_ids:
                    statements.append(
                        f"INSERT INTO {table} (id, {geometry_column}) "
                        f"VALUES ({row_id}, '{escaped}')"
                    )
                else:
                    statements.append(
                        f"INSERT INTO {table} ({geometry_column}) VALUES ('{escaped}')"
                    )
        return statements

    @classmethod
    def from_statements(cls, statements: list[str]) -> "DatabaseSpec":
        """Rebuild a spec from :meth:`create_statements` output.

        Discrepancies carry the materialising statements rather than the
        spec itself; the CLI's ``--reduce`` mode parses them back so the
        reducer can re-materialise candidate databases.  Row order (and so
        the stable ``id`` column) is preserved.  A statement outside the
        two shapes ``create_statements`` emits raises: silently dropping it
        would hand the reducer a truncated database and let a vanished
        discrepancy masquerade as a minimized one.
        """
        spec = cls(tables={})
        for statement in statements:
            stripped = statement.strip()
            if not stripped:
                continue
            created = _CREATE_TABLE.match(stripped)
            if created:
                spec.tables.setdefault(created.group("table"), [])
                continue
            inserted = _INSERT_ROW.match(stripped)
            if inserted:
                wkt = inserted.group("wkt").replace("''", "'")
                spec.tables.setdefault(inserted.group("table"), []).append(wkt)
                continue
            raise ValueError(
                f"unrecognised materialisation statement: {stripped[:80]!r}"
            )
        return spec


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the geometry-aware generator.

    ``use_derivative_strategy=False`` turns the generator into the paper's
    self-constructed baseline (RSG: random-shape only, Section 5.4).
    """

    geometry_count: int = 10
    table_count: int = 2
    use_derivative_strategy: bool = True
    random_shape_probability: float = 0.5
    shape_config: ShapeConfig = ShapeConfig()


class GeometryAwareGenerator:
    """Implements Algorithm 1 against a target SDBMS connection."""

    def __init__(
        self,
        database: SpatialDatabase,
        config: GeneratorConfig | None = None,
        rng: random.Random | None = None,
    ):
        self.database = database
        self.config = config or GeneratorConfig()
        self.rng = rng or random.Random()
        self.shapes = RandomShapeGenerator(self.rng, self.config.shape_config)
        self.deriver = Deriver(database, self.rng)

    def generate(
        self, geometry_count: int | None = None, table_count: int | None = None
    ) -> DatabaseSpec:
        """Generate a database spec with the requested number of geometries."""
        total = geometry_count if geometry_count is not None else self.config.geometry_count
        tables = table_count if table_count is not None else self.config.table_count
        table_names = [f"t{i}" for i in range(1, tables + 1)]
        spec = DatabaseSpec(tables={name: [] for name in table_names})

        # Line 3-4: the very first geometry always uses the random-shape
        # strategy and goes into a random table.
        first = self.shapes.random_geometry().wkt
        spec.tables[self.rng.choice(table_names)].append(first)

        for _ in range(1, total):
            if self._use_random_shape():
                wkt = self.shapes.random_geometry().wkt
            else:
                wkt = self.deriver.derive(spec.all_wkts())
            spec.tables[self.rng.choice(table_names)].append(wkt)
        return spec

    def _use_random_shape(self) -> bool:
        if not self.config.use_derivative_strategy or not self.deriver.available():
            return True
        return self.rng.random() < self.config.random_shape_probability
