"""Discrepancy deduplication.

A one-hour fuzzing run produces thousands of discrepancy-inducing cases that
boil down to a handful of unique bugs (the paper reports 2,366 and 9,913 raw
cases for the two generator configurations of Figure 8).  Deduplication maps
each case to a bug identity:

* **ground-truth deduplication** uses the injected-bug ids the fault layer
  recorded when the discrepancy was produced — this is the analogue of the
  paper's binary search over fix commits, available to us because the bugs
  are injected rather than historical;
* **signature deduplication** is the fallback a tester without ground truth
  would use: the scenario and query label under test, the *structural
  shape* of the failing query plan, plus the multiset of geometry types in
  the reduced test case.  The scenario tag matters now that several
  scenarios can exercise the same predicate — an ``st_intersects`` miscount
  from the JOIN template and one from the single-table filter travel
  through different engine paths and deserve separate identities.  The
  shape component comes from the query IR
  (:func:`repro.core.qir.structural_signature`): table names, aliases and
  literal values are anonymised, so two cases that differ only in which
  generated tables or constants they mention collapse to one bug identity —
  deduplication by query structure rather than string equality.
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field

from repro.core.oracle import CrashReport, Discrepancy
from repro.core.qir import structural_signature
from repro.geometry import load_wkt

#: the quoted WKT literal of an INSERT produced by DatabaseSpec, with or
#: without the leading id column.
_INSERT_WKT = re.compile(r"VALUES\s*\((?:\d+\s*,\s*)?'(?P<wkt>.*)'\)\s*$", re.DOTALL)


def ground_truth_identity(discrepancy: Discrepancy) -> tuple[str, ...]:
    """The injected bug ids responsible for a discrepancy (may be empty)."""
    return tuple(sorted(set(discrepancy.triggered_bug_ids)))


def query_shape(query) -> str:
    """The anonymised structural shape of a query, for signature building.

    Queries carrying an IR report :func:`repro.core.qir.structural_signature`
    of their SDB1 plan; legacy string-only queries degrade to an empty
    shape, keeping old pickled findings deduplicatable.
    """
    ir = getattr(query, "ir_original", None)
    if ir is None and hasattr(query, "ir"):
        try:
            ir = query.ir()
        except Exception:  # noqa: BLE001 - shape building must not fail
            ir = None
    if ir is None:
        return ""
    return structural_signature(ir)


def signature_identity(discrepancy: Discrepancy) -> str:
    """A syntactic bug signature: scenario + label + query shape + geometry types."""
    types: list[str] = []
    for statement in discrepancy.original_statements:
        if not statement.upper().startswith("INSERT"):
            continue
        match = _INSERT_WKT.search(statement)
        wkt = match.group("wkt").replace("''", "'") if match else ""
        try:
            types.append(load_wkt(wkt).geom_type)
        except Exception:  # noqa: BLE001 - signature building must not fail
            types.append("UNPARSED")
    label = getattr(discrepancy.query, "label", None) or getattr(
        discrepancy.query, "predicate", "?"
    )
    scenario = getattr(discrepancy, "scenario", "topological-join")
    shape = query_shape(discrepancy.query)
    return f"{scenario}|{label}|{shape}|{'+'.join(sorted(types))}"


@dataclass
class DeduplicationResult:
    """Unique bugs found so far, with first-detection bookkeeping."""

    #: Ground-truth injected-bug ids, in order of first detection.
    unique_bug_ids: list[str] = field(default_factory=list)
    #: Syntactic signatures (predicate + geometry-type multiset), the
    #: no-ground-truth fallback a real tester would deduplicate with.
    unique_signatures: list[str] = field(default_factory=list)
    #: Elapsed seconds at which each bug id was first detected.
    first_detection_seconds: dict[str, float] = field(default_factory=dict)

    def unique_count(self, use_ground_truth: bool = True) -> int:
        return len(self.unique_bug_ids) if use_ground_truth else len(self.unique_signatures)

    def combine(self, other: "DeduplicationResult") -> "DeduplicationResult":
        """Union two results: earliest detection wins, orders re-derived.

        Bug ids are re-ordered by their merged first-detection instant (ties
        broken by id for determinism); signatures keep left-then-right first
        appearance order, matching how a single deduplicator that had seen
        both observation streams would have recorded them.
        """
        detections = dict(self.first_detection_seconds)
        for bug_id, seconds in other.first_detection_seconds.items():
            if bug_id not in detections or seconds < detections[bug_id]:
                detections[bug_id] = seconds
        ordered = sorted(detections.items(), key=lambda item: (item[1], item[0]))
        signatures = list(self.unique_signatures)
        for signature in other.unique_signatures:
            if signature not in signatures:
                signatures.append(signature)
        return DeduplicationResult(
            unique_bug_ids=[bug_id for bug_id, _ in ordered],
            unique_signatures=signatures,
            first_detection_seconds=detections,
        )


class Deduplicator:
    """Tracks unique bugs across a testing campaign."""

    def __init__(self):
        self.result = DeduplicationResult()

    @property
    def signature_count(self) -> int:
        """Unique ``signature_identity`` keys observed so far.

        The reward feed of the feedback-guided scheduler
        (:mod:`repro.core.scheduler`): the campaign snapshots this counter
        around each arm's pass and rates the arm by the marginal new keys
        per query spent.  Reading it consumes no randomness and mutates
        nothing, so novelty accounting cannot perturb the finding stream.
        """
        return len(self.result.unique_signatures)

    def _observe(
        self, bug_ids: tuple[str, ...], signature: str, elapsed_seconds: float
    ) -> list[str]:
        """Shared bookkeeping: fold one finding's identities into the result."""
        new_ids: list[str] = []
        for bug_id in bug_ids:
            if bug_id not in self.result.unique_bug_ids:
                self.result.unique_bug_ids.append(bug_id)
                self.result.first_detection_seconds[bug_id] = elapsed_seconds
                new_ids.append(bug_id)
        if signature not in self.result.unique_signatures:
            self.result.unique_signatures.append(signature)
        return new_ids

    def preseed_signatures(self, signatures) -> int:
        """Seed the signature space with history (the findings-store bridge).

        Every pre-seeded signature counts as "already seen": subsequent
        observations of it are not novel, so the feedback-guided scheduler's
        novelty rewards — and anything else keyed on ``signature_count``
        deltas — measure *cross-run* novelty when a campaign is pre-seeded
        from a persistent store (:meth:`repro.store.FindingsStore.
        preseed_deduplicator`).  Ground-truth bug ids are untouched: the
        run still reports every injected bug it detects.  Returns how many
        signatures were new to this deduplicator.
        """
        added = 0
        known = set(self.result.unique_signatures)
        for signature in signatures:
            if signature not in known:
                known.add(signature)
                self.result.unique_signatures.append(signature)
                added += 1
        return added

    def observe_discrepancy(self, discrepancy: Discrepancy, elapsed_seconds: float) -> list[str]:
        """Record a discrepancy; returns the newly-discovered bug ids."""
        return self._observe(
            ground_truth_identity(discrepancy), signature_identity(discrepancy), elapsed_seconds
        )

    def observe_finding(self, finding, elapsed_seconds: float) -> list[str]:
        """Record an oracle-family finding; returns newly-discovered ids.

        Findings from the single-database oracle families
        (:mod:`repro.oracles` — set-theoretic join algebra, PQS) join the
        same identity spaces as AEI discrepancies: ground truth is the
        sorted set of injected-bug ids the fault layer recorded, and the
        syntactic fallback is :meth:`OracleFinding.signature`, built in the
        ``family|label|query shape|geometry types`` format of
        :func:`signature_identity`.
        """
        bug_ids = tuple(sorted(set(getattr(finding, "triggered_bug_ids", ()))))
        return self._observe(bug_ids, finding.signature(), elapsed_seconds)

    def observe_divergence(self, divergence, elapsed_seconds: float) -> list[str]:
        """Record a cross-backend divergence; returns newly-discovered ids.

        Divergences carry the injected-bug ids the *primary* backend
        triggered while producing its side of the comparison, so they join
        the same ground-truth identity space as AEI discrepancies (ids
        sorted, exactly as :func:`ground_truth_identity` does); their
        syntactic fallback is :meth:`BackendDivergence.signature`.
        """
        bug_ids = tuple(sorted(set(getattr(divergence, "triggered_bug_ids", ()))))
        return self._observe(bug_ids, divergence.signature(), elapsed_seconds)

    def observe_crash(self, crash: CrashReport, elapsed_seconds: float) -> list[str]:
        """Record a crash; returns the newly-discovered bug ids."""
        if crash.bug_id is None:
            return []
        if crash.bug_id in self.result.unique_bug_ids:
            return []
        self.result.unique_bug_ids.append(crash.bug_id)
        self.result.first_detection_seconds[crash.bug_id] = elapsed_seconds
        return [crash.bug_id]

    def merge(self, other: "Deduplicator") -> "Deduplicator":
        """Fold another deduplicator's findings into this one (in place).

        Used by the parallel orchestrator to union per-shard unique-bug
        sets; first-detection instants must already be on a shared clock
        (see :meth:`repro.core.campaign.CampaignResult.rebased`).  Returns
        ``self`` for chaining.
        """
        self.result = self.result.combine(other.result)
        return self

    def unique_bugs_over_time(self) -> list[tuple[float, int]]:
        """(elapsed seconds, cumulative unique bugs) pairs for Figure 8(a)."""
        ordered = sorted(self.result.first_detection_seconds.values())
        return [(seconds, index + 1) for index, seconds in enumerate(ordered)]
