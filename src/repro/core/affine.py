"""Affine transformation construction (Algorithm 2 of the paper).

A random *integer* mapping matrix is generated — an invertible 2×2 linear
part plus an integer translation — and applied to every geometry of the
generated database.  Using integers only sidesteps floating-point precision
issues in the transformation itself (Section 4.2), so any discrepancy the
oracle observes is attributable to the system under test.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction

from repro.geometry.model import Geometry
from repro.functions.affine_ops import apply_matrix


def has_integral_coordinates(geometry: Geometry) -> bool:
    """Whether every ordinate is an integer (denominator 1).

    The exactness guard of the reuse layer's derived materialisation: the
    WKT writer renders integral ordinates exactly (``format_number``
    round-trips them byte-for-byte), while a non-integral Fraction goes
    through a lossy float ``repr``.  An integer transformation matrix maps
    an integral geometry to an integral geometry, so a derived follow-up
    may skip the WKT round-trip only while this predicate holds for every
    transformed geometry — otherwise the oracle falls back to the legacy
    serialise/re-parse path, whose rounding then matches byte for byte.
    """
    return all(
        coordinate.x.denominator == 1 and coordinate.y.denominator == 1
        for coordinate in geometry.coordinates()
    )


@dataclass(frozen=True)
class AffineTransformation:
    """A 2D affine transformation in homogeneous-matrix form (Equation 4)."""

    matrix: tuple[tuple[int, int, int], tuple[int, int, int], tuple[int, int, int]]

    @classmethod
    def identity(cls) -> "AffineTransformation":
        return cls(((1, 0, 0), (0, 1, 0), (0, 0, 1)))

    @classmethod
    def from_parts(
        cls, a11: int, a12: int, a21: int, a22: int, b1: int, b2: int
    ) -> "AffineTransformation":
        return cls(((a11, a12, b1), (a21, a22, b2), (0, 0, 1)))

    @property
    def determinant(self) -> int:
        (a11, a12, _), (a21, a22, _), _ = self.matrix
        return a11 * a22 - a12 * a21

    @property
    def is_invertible(self) -> bool:
        return self.determinant != 0

    @property
    def is_identity(self) -> bool:
        return self.matrix == ((1, 0, 0), (0, 1, 0), (0, 0, 1))

    @property
    def is_similarity(self) -> bool:
        """True when the linear part is a uniform scaling of an orthogonal map.

        Similarities (rotations, reflections, uniform scalings, translations
        and their compositions) multiply every distance by the same factor,
        so they preserve *relative* distance order — the admissibility
        condition of the KNN and distance oracles (paper Section 7).
        Algebraically: the two columns of the linear part are orthogonal and
        of equal (non-zero) norm.
        """
        (a11, a12, _), (a21, a22, _), _ = self.matrix
        orthogonal = a11 * a12 + a21 * a22 == 0
        equal_norm = a11 * a11 + a21 * a21 == a12 * a12 + a22 * a22
        return orthogonal and equal_norm and self.determinant != 0

    @property
    def is_rigid(self) -> bool:
        """True for distance-preserving maps (similarity with unit scale)."""
        return self.is_similarity and abs(self.determinant) == 1

    @property
    def length_scale(self) -> float:
        """The factor every length is multiplied by (similarities only).

        For a similarity the linear part scales all distances uniformly by
        ``sqrt(|det|)``; for a general affine map lengths change
        anisotropically and no single factor exists, so callers must check
        :attr:`is_similarity` first.
        """
        return math.sqrt(abs(self.determinant))

    @property
    def area_scale(self) -> int:
        """The factor every area is multiplied by: ``|det|`` (any affine map)."""
        return abs(self.determinant)

    def apply(self, geometry: Geometry) -> Geometry:
        """Transform every coordinate of a geometry."""
        return apply_matrix(geometry, self.matrix)

    def inverse(self) -> "AffineTransformation":
        """The inverse transformation (exact, possibly with rational entries).

        Used by property-based tests to verify that affine equivalence is a
        symmetric relation; the inverse of an integer matrix is rational, so
        the result is returned as a plain callable-compatible transformation
        whose entries may be Fractions.
        """
        (a11, a12, b1), (a21, a22, b2), _ = self.matrix
        det = Fraction(self.determinant)
        if det == 0:
            raise ValueError("a singular transformation has no inverse")
        inv_a11 = Fraction(a22) / det
        inv_a12 = Fraction(-a12) / det
        inv_a21 = Fraction(-a21) / det
        inv_a22 = Fraction(a11) / det
        inv_b1 = -(inv_a11 * b1 + inv_a12 * b2)
        inv_b2 = -(inv_a21 * b1 + inv_a22 * b2)
        return AffineTransformation(
            (
                (inv_a11, inv_a12, inv_b1),
                (inv_a21, inv_a22, inv_b2),
                (0, 0, 1),
            )
        )

    def describe(self) -> str:
        """Human-readable description used in bug reports."""
        (a11, a12, b1), (a21, a22, b2), _ = self.matrix
        return f"x' = {a11}x + {a12}y + {b1}; y' = {a21}x + {a22}y + {b2}"


def random_affine_transformation(
    rng: random.Random,
    coefficient_range: tuple[int, int] = (-3, 3),
    translation_range: tuple[int, int] = (-10, 10),
) -> AffineTransformation:
    """A random invertible integer transformation (Algorithm 2, lines 7-11)."""
    low, high = coefficient_range
    while True:
        a11 = rng.randint(low, high)
        a12 = rng.randint(low, high)
        a21 = rng.randint(low, high)
        a22 = rng.randint(low, high)
        if a11 * a22 - a12 * a21 != 0:
            break
    b1 = rng.randint(*translation_range)
    b2 = rng.randint(*translation_range)
    return AffineTransformation.from_parts(a11, a12, a21, a22, b1, b2)


#: the four quarter-turn rotations (reflections avoided).
_QUARTER_TURNS = ((1, 0, 0, 1), (0, -1, 1, 0), (-1, 0, 0, -1), (0, 1, -1, 0))


def _quarter_turn_transformation(rng: random.Random, scale_of) -> AffineTransformation:
    """Quarter-turn rotation × ``scale_of(rng)`` scaling + integer translation.

    ``scale_of`` is called *between* the rotation and translation draws so
    both public samplers keep their historical rng-draw order.
    """
    quarter = rng.choice(_QUARTER_TURNS)
    scale = scale_of(rng)
    a11, a12, a21, a22 = (value * scale for value in quarter)
    b1 = rng.randint(-10, 10)
    b2 = rng.randint(-10, 10)
    return AffineTransformation.from_parts(a11, a12, a21, a22, b1, b2)


def similarity_affine_transformation(rng: random.Random) -> AffineTransformation:
    """A random similarity: quarter-turn rotation, uniform integer scaling
    and integer translation (reflections avoided).

    This is the KNN-safe subset discussed in the paper's Section 7: rotate,
    translate and scale preserve relative distances, whereas shearing does
    not, so distance-ranking oracles must restrict themselves to this family.
    The integer scale factor also keeps scaled distance thresholds exact.
    """
    return _quarter_turn_transformation(rng, lambda r: r.randint(1, 4))


#: historical name: the original KNN module called the similarity family
#: "rigid" after the paper's informal rotate/translate/scale phrasing.
rigid_affine_transformation = similarity_affine_transformation


def rigid_motion_transformation(rng: random.Random) -> AffineTransformation:
    """A random rigid motion: quarter-turn rotation plus integer translation.

    Unlike :func:`similarity_affine_transformation` this preserves absolute
    distances (unit scale), so even distance *values* — not just their order
    — must survive the transformation unchanged.
    """
    return _quarter_turn_transformation(rng, lambda r: 1)
