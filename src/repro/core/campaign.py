"""The testing-campaign driver (the automated version of Section 5.1).

A campaign repeatedly (1) generates a database with the geometry-aware
generator, (2) builds its affine-equivalent follow-up, (3) runs template
queries over both, and (4) records, reduces and deduplicates every
discrepancy and crash.  It also keeps the timing split (time inside the
SDBMS vs. total Spatter time) that Figure 7 reports and exposes
unique-bugs-over-time data for Figure 8(a).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.dedup import Deduplicator
from repro.core.generator import GeneratorConfig, GeometryAwareGenerator
from repro.core.oracle import AEIOracle, CrashReport, Discrepancy
from repro.engine.database import SpatialDatabase, connect
from repro.engine.dialects import default_fault_profile
from repro.engine.faults import FaultPlan


@dataclass
class CampaignConfig:
    """Everything a campaign needs to know."""

    dialect: str = "postgis"
    bug_ids: tuple[str, ...] | None = None  # None = the dialect's default profile
    emulate_release_under_test: bool = True
    geometry_count: int = 10
    table_count: int = 2
    queries_per_round: int = 20
    use_derivative_strategy: bool = True
    seed: int = 0


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    rounds: int = 0
    queries_run: int = 0
    errors_ignored: int = 0
    discrepancies: list[Discrepancy] = field(default_factory=list)
    crashes: list[CrashReport] = field(default_factory=list)
    unique_bug_ids: list[str] = field(default_factory=list)
    unique_bug_timeline: list[tuple[float, int]] = field(default_factory=list)
    total_seconds: float = 0.0
    sdbms_seconds: float = 0.0

    @property
    def unique_bug_count(self) -> int:
        return len(self.unique_bug_ids)

    def summary(self) -> str:
        return (
            f"{self.config.dialect}: {self.rounds} rounds, {self.queries_run} queries, "
            f"{len(self.discrepancies)} discrepancies, {len(self.crashes)} crashes, "
            f"{self.unique_bug_count} unique bugs, "
            f"{self.sdbms_seconds:.3f}s in SDBMS / {self.total_seconds:.3f}s total"
        )


class TestingCampaign:
    """Runs Spatter against one emulated system."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, config: CampaignConfig | None = None):
        self.config = config or CampaignConfig()
        self.rng = random.Random(self.config.seed)
        self.deduplicator = Deduplicator()

    # ------------------------------------------------------------- plumbing
    def _bug_ids(self) -> tuple[str, ...]:
        if self.config.bug_ids is not None:
            return tuple(self.config.bug_ids)
        if self.config.emulate_release_under_test:
            return tuple(default_fault_profile(self.config.dialect))
        return ()

    def new_connection(self) -> SpatialDatabase:
        """A fresh connection to the system under test."""
        return connect(self.config.dialect, bug_ids=self._bug_ids())

    # ------------------------------------------------------------------ run
    def run(
        self,
        rounds: int | None = None,
        duration_seconds: float | None = None,
    ) -> CampaignResult:
        """Run for a number of rounds or for a wall-clock budget."""
        if rounds is None and duration_seconds is None:
            rounds = 5
        result = CampaignResult(config=self.config)
        started = time.perf_counter()

        while True:
            elapsed = time.perf_counter() - started
            if duration_seconds is not None and elapsed >= duration_seconds:
                break
            if rounds is not None and result.rounds >= rounds:
                break
            self._run_round(result, started)

        result.total_seconds = time.perf_counter() - started
        result.unique_bug_ids = list(self.deduplicator.result.unique_bug_ids)
        result.unique_bug_timeline = self.deduplicator.unique_bugs_over_time()
        return result

    def _run_round(self, result: CampaignResult, started: float) -> None:
        result.rounds += 1
        generation_connection = self.new_connection()
        generator = GeometryAwareGenerator(
            generation_connection,
            GeneratorConfig(
                geometry_count=self.config.geometry_count,
                table_count=self.config.table_count,
                use_derivative_strategy=self.config.use_derivative_strategy,
            ),
            rng=self.rng,
        )
        sdbms_connections: list[SpatialDatabase] = [generation_connection]

        def tracked_factory() -> SpatialDatabase:
            connection = self.new_connection()
            sdbms_connections.append(connection)
            return connection

        oracle = AEIOracle(tracked_factory, rng=self.rng)
        try:
            spec = generator.generate()
        except Exception as crash:  # EngineCrash during derivation
            from repro.errors import EngineCrash

            if isinstance(crash, EngineCrash):
                report = CrashReport(
                    statement="<derivative strategy>", message=str(crash), bug_id=crash.bug_id
                )
                result.crashes.append(report)
                elapsed = time.perf_counter() - started
                self.deduplicator.observe_crash(report, elapsed)
                result.sdbms_seconds += sum(c.stats.seconds_in_engine for c in sdbms_connections)
                return
            raise

        outcome = oracle.check(spec, query_count=self.config.queries_per_round)
        elapsed = time.perf_counter() - started
        result.queries_run += outcome.queries_run
        result.errors_ignored += outcome.errors_ignored
        for discrepancy in outcome.discrepancies:
            result.discrepancies.append(discrepancy)
            self.deduplicator.observe_discrepancy(discrepancy, elapsed)
        for crash in outcome.crashes:
            result.crashes.append(crash)
            self.deduplicator.observe_crash(crash, elapsed)
        result.sdbms_seconds += sum(c.stats.seconds_in_engine for c in sdbms_connections)
