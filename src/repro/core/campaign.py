"""The testing-campaign driver (the automated version of Section 5.1).

A campaign repeatedly (1) generates a database with the geometry-aware
generator, (2) builds its affine-equivalent follow-ups (one per
transformation-family group of the active scenarios), (3) validates every
metamorphic scenario of the registry (``repro.scenarios``) over the pairs,
and (4) records, reduces and deduplicates every discrepancy and crash.  It also keeps the timing split (time inside the
SDBMS vs. total Spatter time) that Figure 7 reports and exposes
unique-bugs-over-time data for Figure 8(a).

Rounds are independently seeded: round *i* of a campaign with seed *S* draws
every random decision from ``random.Random(f"{S}|{i}")``.  That makes the
round stream *partitionable* — a shard ``k`` of ``n`` replays exactly the
global rounds ``k, k+n, k+2n, ...`` — which is what lets the parallel
orchestrator (:mod:`repro.core.parallel`) split one campaign across a
process pool and merge the shard results back into the same unique-bug set
a serial run of the same seed and total round count would have produced.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field, replace

from repro.backends import Backend, BackendDivergence, create_backend
from repro.core.dedup import DeduplicationResult, Deduplicator
from repro.core.generator import GeneratorConfig, GeometryAwareGenerator
from repro.core.oracle import AEIOracle, CrashReport, Discrepancy, allocate_query_budget
from repro.core.scheduler import (
    BANDIT_SCHEDULER,
    BanditScheduler,
    STATIC_SCHEDULER,
    merge_scheduler_stats,
    oracle_arm,
    resolve_scheduler_name,
    scenario_arm,
)
from repro.core.reuse import reuse_stats, set_reuse
from repro.core.trace import CampaignTrace
from repro.engine.database import SpatialDatabase, connect
from repro.engine.plancache import PlanCache
from repro.engine.dialects import default_fault_profile
from repro.oracles import AEI_ORACLE, OracleFinding, get_oracle, resolve_oracle_names
from repro.scenarios import resolve_scenarios


def round_rng(seed: int, round_index: int) -> random.Random:
    """The RNG for one campaign round.

    Seeding with the ``"seed|round"`` string (hashed through
    :meth:`random.Random.seed`'s deterministic byte path) makes every round
    reproducible in isolation, independent of process, shard assignment, or
    how much entropy earlier rounds consumed.
    """
    return random.Random(f"{seed}|{round_index}")


@dataclass
class CampaignConfig:
    """Everything a campaign needs to know."""

    #: Emulated system under test (one of ``repro.engine.dialects``).
    dialect: str = "postgis"
    #: Execution backend the campaign drives (a ``repro.backends`` registry
    #: name).  Backends are created from this *name* plus the other config
    #: fields, never stored here, which keeps the config picklable across
    #: the parallel orchestrator's process boundary.
    backend: str = "inprocess"
    #: When set, enables the cross-backend differential mode: every scenario
    #: query is replayed on a fixed-profile (fault-free) session of this
    #: backend and result divergences are reported as findings alongside the
    #: affine-equivalence violations.
    compare_backend: str | None = None
    #: Explicit injected-bug profile; ``None`` selects the dialect's default
    #: release emulation.
    bug_ids: tuple[str, ...] | None = None
    #: When ``True`` the engine runs with the dialect's reported bugs
    #: injected (the "release under test"); ``False`` tests the fixed engine.
    emulate_release_under_test: bool = True
    #: Geometries per generated database (the paper's *N*).
    geometry_count: int = 10
    #: Tables the geometries are spread over (the paper's *m*).
    table_count: int = 2
    #: Scenario queries instantiated per generation round, split across the
    #: active scenarios (see ``repro.core.oracle.allocate_query_budget``).
    queries_per_round: int = 20
    #: Metamorphic scenarios to validate each round (registry names from
    #: ``repro.scenarios``).  ``None`` runs every scenario applicable to the
    #: dialect — the campaign default; capability gating still applies to an
    #: explicit selection.
    scenarios: tuple[str, ...] | None = None
    #: Oracle families to run each round (registry names from
    #: ``repro.oracles`` plus the built-in ``"aei"`` scenario oracle).
    #: ``None`` runs every family — the campaign default; an explicit
    #: selection without ``"aei"`` skips the affine-equivalence pass and
    #: runs only the selected single-database oracles.
    oracles: tuple[str, ...] | None = None
    #: ``True`` enables the derivative strategy (Algorithm 1); ``False`` is
    #: the random-shape-only RSG baseline.
    use_derivative_strategy: bool = True
    #: ``True`` enables the gated execution fast-path layers: prepared
    #: caching of the full indexable-predicate family, auto-built STR index
    #: prefilters on oracle-materialised databases, and the integer
    #: clearance kernel.  Defaults on; ``False`` is the reference side of
    #: the fast-path equivalence self-checks and the right setting for the
    #: Index baseline oracle.  (The always-pure layers — interned parsing,
    #: per-instance wkt/envelope memos, the relate WKT memo, and the seed's
    #: ST_Contains prepared routing — are not gated; results are identical
    #: in both modes either way, which the equivalence suite asserts.)
    fast_path: bool = True
    #: ``True`` enables the vectorized batch execution core: the numpy
    #: geometry kernels (:mod:`repro.geometry.columnar`) and the plan-level
    #: batch compiler (:mod:`repro.engine.vectorized`) that lowers SELECTs
    #: into scan → batch-prefilter → residual-exact-predicate pipelines.
    #: ``False`` (the CLI's ``--no-vectorized``) runs the scalar
    #: row-at-a-time reference path; the batch-vs-scalar equivalence suite
    #: holds the two modes finding-for-finding identical.
    vectorized: bool = True
    #: ``True`` enables the cross-round reuse layer: follow-up databases
    #: derived from parsed originals (no WKT round-trip), direct bulk-load
    #: of parsed geometry tables into sessions that support it, and the
    #: campaign-lifetime compiled-plan cache
    #: (:mod:`repro.engine.plancache`).  ``False`` (the CLI's
    #: ``--no-reuse``) replays the legacy render/parse/execute path end to
    #: end; the reuse equivalence suite holds the two modes
    #: finding-for-finding identical.
    reuse: bool = True
    #: Round-budget allocation policy.  ``"static"`` (the default) keeps the
    #: historical even :func:`~repro.core.oracle.allocate_query_budget`
    #: split with its rotating remainder — byte-for-byte the pre-scheduler
    #: behaviour.  ``"bandit"`` replaces it with the feedback-guided
    #: allocator (:mod:`repro.core.scheduler`): a seeded Thompson bandit
    #: over per-arm dedup-signature novelty, one arm per active scenario
    #: and oracle family.
    scheduler: str = STATIC_SCHEDULER
    #: When set, the campaign appends a structured JSONL event trace to
    #: this path: round boundaries, scheduler allocation decisions with
    #: their posterior inputs, findings (with novelty), and deadline
    #: events.  ``None`` (the default) traces nothing.  Schema:
    #: ``docs/SCHEDULER.md``.
    trace_file: str | None = None
    #: Master seed; combined with the global round index via
    #: :func:`round_rng`, so ``seed`` + total rounds fully determine a run.
    seed: int = 0
    #: Worker processes the parallel orchestrator may use.  ``1`` keeps the
    #: campaign single-process (the classic serial driver).
    workers: int = 1
    #: Number of deterministic round streams the campaign is split into.
    #: ``None`` means "one shard per worker".  The shard count — not the
    #: worker count — is what the result depends on, and any shard count
    #: yields the same merged unique-bug set as a serial run of the same
    #: seed and total rounds.
    shards: int | None = None

    @property
    def shard_count(self) -> int:
        """The effective number of shards (``shards`` or one per worker)."""
        if self.shards is not None:
            return max(1, self.shards)
        return max(1, self.workers)

    def resolved_bug_ids(self) -> tuple[str, ...]:
        """The injected-bug profile this configuration runs with.

        The single resolution rule shared by the campaign driver and the
        CLI's ``--reduce`` re-validation: an explicit profile wins, the
        release emulation selects the dialect's default faults, and a
        clean run injects nothing.
        """
        if self.bug_ids is not None:
            return tuple(self.bug_ids)
        if self.emulate_release_under_test:
            return tuple(default_fault_profile(self.dialect))
        return ()


@dataclass
class CampaignResult:
    """Everything a campaign (or one shard of one) produced."""

    #: The configuration the campaign ran with.
    config: CampaignConfig
    #: Generation/validation rounds completed.
    rounds: int = 0
    #: Scenario queries executed by the oracle.
    queries_run: int = 0
    #: Queries executed per scenario name (summed across shards on merge),
    #: the denominator of per-scenario bug-yield reporting.
    queries_by_scenario: dict[str, int] = field(default_factory=dict)
    #: Fast-path cache counters (prepared/relate/interner hits and misses),
    #: summed over connections and rounds — and over shards on merge.
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Semantic errors (invalid geometries, unsupported arguments) that were
    #: ignored rather than reported.
    errors_ignored: int = 0
    #: Every logic-bug candidate (AEI count mismatch) observed, pre-dedup.
    discrepancies: list[Discrepancy] = field(default_factory=list)
    #: Every single-database oracle-family finding (set-theoretic relation
    #: violations, PQS pivot omissions) observed, pre-dedup.
    oracle_findings: list[OracleFinding] = field(default_factory=list)
    #: Queries executed per oracle-family name (summed across shards on
    #: merge); the AEI oracle's queries stay in ``queries_by_scenario``.
    queries_by_oracle: dict[str, int] = field(default_factory=dict)
    #: Per-arm scheduler statistics (arm id → pulls / queries /
    #: novel-signatures / posterior), populated when the feedback-guided
    #: scheduler ran; counters merge across shards by summation exactly
    #: like ``queries_by_scenario`` (the posterior summary is re-derived
    #: from the merged counters).  Empty for ``scheduler="static"``.
    scheduler_stats: dict[str, dict] = field(default_factory=dict)
    #: Every crash-bug candidate observed, pre-dedup.
    crashes: list[CrashReport] = field(default_factory=list)
    #: Every cross-backend divergence observed (the differential finding
    #: class; empty unless ``config.compare_backend`` is set).
    divergences: list[BackendDivergence] = field(default_factory=list)
    #: Scenario queries replayed on the reference backend.
    divergence_queries: int = 0
    #: Reference-side errors the differential mode ignored — the
    #: inapplicability blind spot of Section 5.3.  A comparison where this
    #: rivals ``divergence_queries`` is vacuous, not clean.
    reference_errors_ignored: int = 0
    #: Deduplicated ground-truth bug ids, in order of first detection.
    unique_bug_ids: list[str] = field(default_factory=list)
    #: ``(elapsed seconds, cumulative unique bugs)`` pairs for Figure 8(a),
    #: on the campaign's shared wall clock.
    unique_bug_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: First-detection instant of each unique bug id, in seconds on the
    #: campaign's shared wall clock (what ``merge`` rebases and unions).
    first_detection_seconds: dict[str, float] = field(default_factory=dict)
    #: Total wall-clock Spatter time.  For a merged parallel result this is
    #: the wall-clock of the whole parallel run, not the sum of the shards.
    total_seconds: float = 0.0
    #: Time spent executing statements inside the SDBMS (summed over shards
    #: for merged results, i.e. aggregate engine time, not wall clock).
    sdbms_seconds: float = 0.0
    #: Wall time spent materialising databases (initial loads plus derived
    #: follow-ups), summed over shards like ``sdbms_seconds``.
    materialise_seconds: float = 0.0
    #: Wall time of the oracle passes minus materialisation — the
    #: query-execution share of the reuse layer's phase split.
    execute_seconds: float = 0.0
    #: Which shard produced this result (0 for serial runs).
    shard_index: int = 0
    #: How many shards the producing campaign was split into.
    shard_count: int = 1
    #: Seconds between the orchestrator's campaign start and this shard's
    #: start; ``merge`` folds the offset into the timeline rebase.
    start_offset_seconds: float = 0.0

    @property
    def unique_bug_count(self) -> int:
        """Number of deduplicated ground-truth bugs found."""
        return len(self.unique_bug_ids)

    @property
    def unique_divergence_signatures(self) -> list[str]:
        """Deduplicated cross-backend divergence identities, in first-seen
        order (ground-truth bug ids when the primary backend recorded
        triggers, scenario+label signatures otherwise)."""
        signatures: list[str] = []
        for divergence in self.divergences:
            signature = divergence.signature()
            if signature not in signatures:
                signatures.append(signature)
        return signatures

    def summary(self) -> str:
        """A one-line human-readable digest of the run."""
        sharding = ""
        if self.shard_count > 1:
            sharding = f" [{self.shard_count} shards]"
        scenarios = ""
        if self.queries_by_scenario:
            scenarios = f" across {len(self.queries_by_scenario)} scenario(s)"
        divergences = ""
        if self.config.compare_backend is not None:
            divergences = (
                f", {len(self.divergences)} divergences "
                f"(vs {self.config.compare_backend})"
            )
        findings = ""
        if self.queries_by_oracle or self.oracle_findings:
            findings = f", {len(self.oracle_findings)} oracle findings"
        return (
            f"{self.config.dialect}: {self.rounds} rounds, {self.queries_run} queries"
            f"{scenarios}, "
            f"{len(self.discrepancies)} discrepancies, {len(self.crashes)} crashes"
            f"{findings}{divergences}, "
            f"{self.unique_bug_count} unique bugs, "
            f"{self.sdbms_seconds:.3f}s in SDBMS / {self.total_seconds:.3f}s total"
            f"{sharding}"
        )

    # ---------------------------------------------------------------- merging
    def rebased(self) -> "CampaignResult":
        """This result with ``start_offset_seconds`` folded into the clock.

        Shards measure elapsed time from their own start; rebasing shifts
        the first-detection instants and the timeline onto the orchestrator's
        shared wall clock so that merged timelines are comparable.
        """
        if self.start_offset_seconds == 0.0:
            return self
        offset = self.start_offset_seconds
        detections = {
            bug_id: seconds + offset for bug_id, seconds in self.first_detection_seconds.items()
        }
        return replace(
            self,
            first_detection_seconds=detections,
            unique_bug_timeline=[(seconds + offset, count) for seconds, count in self.unique_bug_timeline],
            total_seconds=self.total_seconds + offset,
            start_offset_seconds=0.0,
        )

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Combine two shard results into one campaign-level result.

        Counts are summed, raw findings concatenated, and the unique-bug
        sets unioned through :meth:`DeduplicationResult.combine` (earliest
        rebased detection wins), so the merged unique-bugs-over-time series
        lives on one shared wall clock.  ``total_seconds`` becomes the later
        of the two rebased end times (wall clock), while ``sdbms_seconds``
        stays a sum (aggregate engine time across processes).
        """
        left, right = self.rebased(), other.rebased()
        caches = Counter(left.cache_stats)
        caches.update(right.cache_stats)
        combined = DeduplicationResult(
            unique_bug_ids=list(left.unique_bug_ids),
            first_detection_seconds=dict(left.first_detection_seconds),
        ).combine(
            DeduplicationResult(
                unique_bug_ids=list(right.unique_bug_ids),
                first_detection_seconds=dict(right.first_detection_seconds),
            )
        )
        timeline = sorted(combined.first_detection_seconds.values())
        by_scenario = dict(left.queries_by_scenario)
        for scenario, count in right.queries_by_scenario.items():
            by_scenario[scenario] = by_scenario.get(scenario, 0) + count
        by_oracle = dict(left.queries_by_oracle)
        for oracle, count in right.queries_by_oracle.items():
            by_oracle[oracle] = by_oracle.get(oracle, 0) + count
        scheduler = merge_scheduler_stats(left.scheduler_stats, right.scheduler_stats)
        return CampaignResult(
            config=left.config,
            rounds=left.rounds + right.rounds,
            queries_run=left.queries_run + right.queries_run,
            queries_by_scenario=by_scenario,
            cache_stats=dict(caches),
            errors_ignored=left.errors_ignored + right.errors_ignored,
            discrepancies=left.discrepancies + right.discrepancies,
            oracle_findings=left.oracle_findings + right.oracle_findings,
            queries_by_oracle=by_oracle,
            scheduler_stats=scheduler,
            crashes=left.crashes + right.crashes,
            divergences=left.divergences + right.divergences,
            divergence_queries=left.divergence_queries + right.divergence_queries,
            reference_errors_ignored=(
                left.reference_errors_ignored + right.reference_errors_ignored
            ),
            unique_bug_ids=list(combined.unique_bug_ids),
            unique_bug_timeline=[(seconds, index + 1) for index, seconds in enumerate(timeline)],
            first_detection_seconds=dict(combined.first_detection_seconds),
            total_seconds=max(left.total_seconds, right.total_seconds),
            sdbms_seconds=left.sdbms_seconds + right.sdbms_seconds,
            materialise_seconds=left.materialise_seconds + right.materialise_seconds,
            execute_seconds=left.execute_seconds + right.execute_seconds,
            shard_index=0,
            shard_count=max(left.shard_count, right.shard_count),
            start_offset_seconds=0.0,
        )

    @classmethod
    def combine(cls, results: "list[CampaignResult]") -> "CampaignResult":
        """Merge any number of shard results (see :meth:`merge`)."""
        if not results:
            raise ValueError("cannot combine zero campaign results")
        merged = results[0].rebased()
        for result in results[1:]:
            merged = merged.merge(result)
        return merged


class TestingCampaign:
    """Runs Spatter against one emulated system.

    ``shard_index``/``shard_count`` select which slice of the global round
    stream this instance replays: shard *k* of *n* runs global rounds
    ``k, k+n, k+2n, ...``.  The default ``(0, 1)`` is the classic serial
    campaign that runs every round.
    """

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(
        self,
        config: CampaignConfig | None = None,
        shard_index: int = 0,
        shard_count: int = 1,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if not 0 <= shard_index < shard_count:
            raise ValueError("shard_index must be in [0, shard_count)")
        self.config = config or CampaignConfig()
        self.shard_index = shard_index
        self.shard_count = shard_count
        #: the validated oracle-family selection; resolving here makes an
        #: unknown ``--oracles`` name fail at construction, not mid-campaign.
        self.active_oracles = resolve_oracle_names(self.config.oracles)
        self.deduplicator = Deduplicator()
        #: rounds completed over the instance's lifetime; makes repeated
        #: ``run()`` calls continue the round stream instead of replaying it.
        self.rounds_completed = 0
        #: the execution backend, rebuilt from the (picklable) config in
        #: whichever process this campaign instance lives.
        self.backend: Backend = create_backend(
            self.config.backend,
            dialect=self.config.dialect,
            bug_ids=self._bug_ids(),
            fast_path=self.config.fast_path,
            vectorized=self.config.vectorized,
        )
        if self._bug_ids() and not self.backend.capabilities().supports_fault_injection:
            # A release emulation needs the fault layer; running it on a
            # backend that cannot inject the bugs would silently campaign
            # against the fixed engine and read like a clean release.
            raise ValueError(
                f"backend {self.config.backend!r} does not support fault "
                "injection; run it with emulate_release_under_test=False "
                "(--clean) or an empty bug profile"
            )
        #: the validated budget-allocation policy; resolving here makes an
        #: unknown ``--scheduler`` name fail at construction.
        self.scheduler_name = resolve_scheduler_name(self.config.scheduler)
        #: names of the metamorphic scenarios the AEI pass can run (arm
        #: universe of the bandit; empty when the AEI family is deselected).
        self._scenario_arm_names: tuple[str, ...] = ()
        #: names of the applicable single-database oracle families.
        self._oracle_arm_names: tuple[str, ...] = ()
        #: the feedback-guided allocator (``None`` under the static split).
        #: Seeded per (campaign seed, shard split): a fixed ``(seed,
        #: shards)`` configuration replays the identical allocation and
        #: finding stream whatever the worker count — each shard's bandit
        #: learns from its own round stream and the per-arm statistics
        #: merge by summation (see docs/SCHEDULER.md).
        self.scheduler: BanditScheduler | None = None
        #: campaign-lifetime compiled-plan cache (the reuse layer's query
        #: side); handed to every round's AEI oracle so a query shape is
        #: parsed once per campaign, not once per execution.  Inert when
        #: the reuse flag is off — the oracle checks the toggle per pass.
        self.plan_cache = PlanCache()
        capabilities = self.backend.capabilities()
        if AEI_ORACLE in self.active_oracles:
            self._scenario_arm_names = tuple(
                scenario.name
                for scenario in resolve_scenarios(self.config.scenarios, capabilities)
            )
        self._oracle_arm_names = tuple(
            name
            for name in self.active_oracles
            if name != AEI_ORACLE and get_oracle(name).is_applicable(capabilities)
        )
        if self.scheduler_name == BANDIT_SCHEDULER:
            arms = tuple(
                [scenario_arm(name) for name in self._scenario_arm_names]
                + [oracle_arm(name) for name in self._oracle_arm_names]
            )
            self.scheduler = BanditScheduler(
                arms=arms,
                seed=f"{self.config.seed}|{shard_index}|{shard_count}",
            )
        #: post-round checkpoint hook: called as ``round_hook(campaign,
        #: result)`` after every completed round.  The store-backed runner
        #: (:mod:`repro.store.runner`) uses it to persist the shard's
        #: resume cursor and new findings atomically per round; ``None``
        #: (the default) keeps the classic driver hook-free.  Assigned
        #: post-construction because hooks are process-local closures —
        #: they never ride the picklable config.
        self.round_hook = None
        #: optional per-event trace sink (forwarded to
        #: :class:`~repro.core.trace.CampaignTrace`); the store ingests the
        #: event stream through this without a trace file being configured.
        self.trace_sink = None
        #: the cross-backend reference, always running the *fixed* engine
        #: (no injected faults) so divergences witness seeded bugs.
        self.reference_backend: Backend | None = None
        if self.config.compare_backend is not None:
            self.reference_backend = create_backend(
                self.config.compare_backend,
                dialect=self.config.dialect,
                bug_ids=(),
                fast_path=self.config.fast_path,
                vectorized=self.config.vectorized,
            )

    # ------------------------------------------------------------- plumbing
    def _bug_ids(self) -> tuple[str, ...]:
        return self.config.resolved_bug_ids()

    def new_connection(self):
        """A fresh session on the configured execution backend.

        For the default ``inprocess`` backend this is exactly the
        :func:`repro.engine.database.connect` call the pre-protocol campaign
        made (the backend-equivalence suite pins that down); other backends
        return their own session type satisfying the same protocol.
        """
        return self.backend.open_session()

    # ------------------------------------------------------------------ run
    def run(
        self,
        rounds: int | None = None,
        duration_seconds: float | None = None,
    ) -> CampaignResult:
        """Run for a number of rounds or for a wall-clock budget.

        ``rounds`` counts the rounds *this* call executes; a shard asked
        for ``rounds=r`` replays the ``r`` next global round indices of its
        slice of the stream.  Calling ``run`` again on the same instance
        continues the stream where the previous call stopped.
        """
        if rounds is None and duration_seconds is None:
            rounds = 5
        result = CampaignResult(
            config=self.config,
            shard_index=self.shard_index,
            shard_count=self.shard_count,
        )
        started = time.perf_counter()
        # The wall-clock budget as an absolute instant, so passes deep in a
        # round can check it without re-deriving elapsed time; ``None`` for
        # round-budgeted runs.
        deadline = None if duration_seconds is None else started + duration_seconds
        # A direct serial campaign owns its trace file and truncates it; a
        # shard of a parallel run appends to the file the orchestrator
        # truncated (events interleave, each stamped with its shard index).
        trace = CampaignTrace(
            self.config.trace_file,
            shard_index=self.shard_index,
            truncate=self.shard_count == 1 and self.rounds_completed == 0,
            sink=self.trace_sink,
        )

        # The integer clearance kernel is process-global (it lives below the
        # per-connection layers); scope it to this run so fast-path-off
        # campaigns measure the seed execution end to end.
        from repro.geometry.columnar import set_vectorized_kernels
        from repro.topology.noding import set_fast_clearance

        previous_clearance = set_fast_clearance(self.config.fast_path)
        # The numpy geometry kernels are process-global like the clearance
        # kernel; scope them to this run so --no-vectorized campaigns run
        # the scalar reference geometry code end to end.
        previous_vectorized = set_vectorized_kernels(self.config.vectorized)
        # The reuse layer spans the oracle, the sessions and the plan cache;
        # like the two switches above it is process-global and scoped to the
        # run so --no-reuse campaigns replay the legacy path end to end.
        previous_reuse = set_reuse(self.config.reuse)
        try:
            while True:
                elapsed = time.perf_counter() - started
                if deadline is not None and time.perf_counter() >= deadline:
                    trace.emit("deadline", elapsed=elapsed, phase="rounds")
                    break
                if rounds is not None and result.rounds >= rounds:
                    break
                self._run_round(result, started, trace, deadline)
                if self.round_hook is not None:
                    # after the round is fully folded into the result, so a
                    # checkpoint taken here is a consistent resume point.
                    self.round_hook(self, result)
        finally:
            set_fast_clearance(previous_clearance)
            set_vectorized_kernels(previous_vectorized)
            set_reuse(previous_reuse)
            trace.close()

        result.total_seconds = time.perf_counter() - started
        result.unique_bug_ids = list(self.deduplicator.result.unique_bug_ids)
        result.unique_bug_timeline = self.deduplicator.unique_bugs_over_time()
        result.first_detection_seconds = dict(self.deduplicator.result.first_detection_seconds)
        if self.scheduler is not None:
            result.scheduler_stats = self.scheduler.stats_dict()
        return result

    def _round_budget(self) -> int:
        """The bandit's per-round query pool.

        One ``queries_per_round`` pool per active arm class (AEI scenarios,
        extra oracle families) — exactly what the static split spends on
        the same configuration, so static-vs-bandit comparisons at a fixed
        round count hold the total query budget fixed.
        """
        budget = 0
        if self._scenario_arm_names:
            budget += self.config.queries_per_round
        if self._oracle_arm_names:
            budget += self.config.queries_per_round
        return budget

    def _record_finding(
        self,
        trace: CampaignTrace,
        novelty: dict[str, int],
        arm: str,
        kind: str,
        signatures_before: int,
        new_ids: "list[str]",
        elapsed: float,
        signature_fn,
    ) -> None:
        """Post-observation bookkeeping shared by every finding class.

        Credits the arm with one unit of novelty when the deduplicator's
        signature space grew, and emits a ``finding`` trace event (the
        signature string is only rendered when tracing is on — it re-parses
        geometry and is not free).
        """
        novel = self.deduplicator.signature_count > signatures_before
        if novel:
            novelty[arm] = novelty.get(arm, 0) + 1
        if trace.enabled:
            trace.emit(
                "finding",
                elapsed=elapsed,
                kind=kind,
                arm=arm,
                novel=novel,
                signature=signature_fn(),
                bug_ids=list(new_ids),
            )

    def _run_round(
        self,
        result: CampaignResult,
        started: float,
        trace: CampaignTrace,
        deadline: float | None = None,
    ) -> None:
        # Global index of the round in the campaign-wide stream; every
        # random decision of the round derives from it, so a shard replays
        # exactly what the serial campaign would have run at that index.
        global_round = self.shard_index + self.rounds_completed * self.shard_count
        rng = round_rng(self.config.seed, global_round)
        result.rounds += 1
        self.rounds_completed += 1
        queries_at_start = result.queries_run
        trace.emit(
            "round_start", elapsed=time.perf_counter() - started, round=global_round
        )
        generation_connection = self.new_connection()
        generator = GeometryAwareGenerator(
            generation_connection,
            GeneratorConfig(
                geometry_count=self.config.geometry_count,
                table_count=self.config.table_count,
                use_derivative_strategy=self.config.use_derivative_strategy,
            ),
            rng=rng,
        )
        sdbms_connections: list[SpatialDatabase] = [generation_connection]

        def tracked_factory() -> SpatialDatabase:
            connection = self.new_connection()
            sdbms_connections.append(connection)
            return connection

        oracle = AEIOracle(
            tracked_factory,
            rng=rng,
            fast_path=self.config.fast_path,
            capabilities=self.backend.capabilities(),
            reference_backend=self.reference_backend,
            plan_cache=self.plan_cache,
        )
        global_caches_before = self._global_cache_stats()
        materialise_at_start = result.materialise_seconds
        execute_at_start = result.execute_seconds
        allocation: dict[str, int] | None = None
        if self.scheduler is not None:
            allocation = self.scheduler.allocate(self._round_budget())
            trace.emit(
                "allocation",
                elapsed=time.perf_counter() - started,
                round=global_round,
                scheduler=self.scheduler_name,
                budgets=allocation,
                posterior=self.scheduler.posterior_inputs(),
            )
        try:
            try:
                spec = generator.generate()
            except Exception as crash:  # EngineCrash during derivation
                from repro.errors import EngineCrash

                if isinstance(crash, EngineCrash):
                    report = CrashReport(
                        statement="<derivative strategy>", message=str(crash), bug_id=crash.bug_id
                    )
                    result.crashes.append(report)
                    elapsed = time.perf_counter() - started
                    new_ids = self.deduplicator.observe_crash(report, elapsed)
                    trace.emit(
                        "finding",
                        elapsed=elapsed,
                        kind="crash",
                        arm=None,
                        novel=bool(new_ids),
                        bug_ids=list(new_ids),
                    )
                    return
                raise

            if AEI_ORACLE in self.active_oracles:
                self._run_aei_pass(result, spec, oracle, allocation, started, trace)
            self._run_extra_oracles(
                result, spec, tracked_factory, rng, started, allocation, trace, deadline
            )
        finally:
            result.sdbms_seconds += sum(c.stats.seconds_in_engine for c in sdbms_connections)
            self._collect_cache_stats(result, sdbms_connections, global_caches_before)
            trace.emit(
                "round_end",
                elapsed=time.perf_counter() - started,
                round=global_round,
                queries=result.queries_run - queries_at_start,
                time_materialise=result.materialise_seconds - materialise_at_start,
                time_execute=result.execute_seconds - execute_at_start,
            )

    def _run_aei_pass(
        self,
        result: CampaignResult,
        spec,
        oracle: AEIOracle,
        allocation: "dict[str, int] | None",
        started: float,
        trace: CampaignTrace,
    ) -> None:
        """Run the round's AEI scenario pass and fold in its outcome.

        With a bandit ``allocation``, each scenario runs exactly its
        allocated budget (the oracle's internal rotating split is bypassed)
        and the scheduler is fed every scenario arm's queries-spent and
        marginal signature novelty; without one, this is the historical
        static pass byte for byte.
        """
        from repro.core.dedup import signature_identity

        scenario_budgets: dict[str, int] | None = None
        aei_budget = self.config.queries_per_round
        if allocation is not None:
            scenario_budgets = {
                name: allocation.get(scenario_arm(name), 0)
                for name in self._scenario_arm_names
            }
            aei_budget = sum(scenario_budgets.values())
            if aei_budget <= 0:
                return
        pass_started = time.perf_counter()
        outcome = oracle.check(
            spec,
            query_count=aei_budget,
            scenarios=self.config.scenarios,
            budgets=scenario_budgets,
        )
        pass_wall = time.perf_counter() - pass_started
        result.materialise_seconds += outcome.materialise_seconds
        result.execute_seconds += max(0.0, pass_wall - outcome.materialise_seconds)
        elapsed = time.perf_counter() - started
        result.queries_run += outcome.queries_run
        for scenario, count in outcome.queries_by_scenario.items():
            result.queries_by_scenario[scenario] = (
                result.queries_by_scenario.get(scenario, 0) + count
            )
        result.errors_ignored += outcome.errors_ignored
        novelty: dict[str, int] = {}
        for discrepancy in outcome.discrepancies:
            result.discrepancies.append(discrepancy)
            signatures_before = self.deduplicator.signature_count
            new_ids = self.deduplicator.observe_discrepancy(discrepancy, elapsed)
            self._record_finding(
                trace,
                novelty,
                scenario_arm(discrepancy.scenario),
                "discrepancy",
                signatures_before,
                new_ids,
                elapsed,
                lambda d=discrepancy: signature_identity(d),
            )
        for crash in outcome.crashes:
            result.crashes.append(crash)
            new_ids = self.deduplicator.observe_crash(crash, elapsed)
            trace.emit(
                "finding",
                elapsed=elapsed,
                kind="crash",
                arm=None,
                novel=bool(new_ids),
                bug_ids=list(new_ids),
            )
        result.divergence_queries += outcome.divergence_queries
        result.reference_errors_ignored += outcome.reference_errors_ignored
        for divergence in outcome.divergences:
            result.divergences.append(divergence)
            signatures_before = self.deduplicator.signature_count
            new_ids = self.deduplicator.observe_divergence(divergence, elapsed)
            self._record_finding(
                trace,
                novelty,
                scenario_arm(divergence.scenario),
                "divergence",
                signatures_before,
                new_ids,
                elapsed,
                divergence.signature,
            )
        # the reference backend is an SDBMS too: its engine time joins the
        # Figure 7 split rather than silently inflating the tester's share.
        result.sdbms_seconds += outcome.reference_seconds
        if self.scheduler is not None and scenario_budgets is not None:
            for name in self._scenario_arm_names:
                if scenario_budgets.get(name, 0) <= 0:
                    continue
                arm = scenario_arm(name)
                self.scheduler.observe(
                    arm, outcome.queries_by_scenario.get(name, 0), novelty.get(arm, 0)
                )

    def _run_extra_oracles(
        self,
        result: CampaignResult,
        spec,
        session_factory,
        rng: random.Random,
        started: float,
        allocation: "dict[str, int] | None" = None,
        trace: CampaignTrace | None = None,
        deadline: float | None = None,
    ) -> None:
        """Run the round's single-database oracle families (``repro.oracles``).

        Each active family gets a slice of the round's query budget (the
        budget counts *checks* — one set-theoretic battery or one pivot
        query — with the rotating remainder the AEI oracle also uses), runs
        on its own tracked session, and folds its findings into the same
        deduplicated identity spaces as AEI discrepancies.  Drawing from the
        round RNG *after* the AEI pass keeps the serial and sharded replays
        of a round identical for a fixed configuration.

        With a bandit ``allocation``, each family instead runs exactly its
        allocated budget (no rotation offset is drawn) and feeds the
        scheduler its queries-spent and marginal signature novelty.  A
        wall-clock ``deadline`` is re-checked before every family pass —
        between the AEI pass and the first family, and between families —
        so one slow pass bounds the overshoot instead of the whole round.
        """
        trace = trace or CampaignTrace(None)
        extra = [get_oracle(name) for name in self.active_oracles if name != AEI_ORACLE]
        capabilities = self.backend.capabilities()
        extra = [oracle for oracle in extra if oracle.is_applicable(capabilities)]
        if not extra or not spec.table_names():
            return
        if allocation is None:
            offset = rng.randrange(len(extra)) if len(extra) > 1 else 0
            budgets = allocate_query_budget(
                self.config.queries_per_round, len(extra), offset=offset
            )
        else:
            budgets = [allocation.get(oracle_arm(oracle.name), 0) for oracle in extra]
        for oracle, budget in zip(extra, budgets):
            if budget <= 0:
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                # One slow pass must not drag the whole round past the
                # wall-clock budget: stop before the next family starts.
                trace.emit(
                    "deadline",
                    elapsed=time.perf_counter() - started,
                    phase=f"oracle:{oracle.name}",
                )
                break
            pass_started = time.perf_counter()
            outcome = oracle.check(spec, session_factory, capabilities, rng, budget)
            pass_wall = time.perf_counter() - pass_started
            result.materialise_seconds += outcome.materialise_seconds
            result.execute_seconds += max(0.0, pass_wall - outcome.materialise_seconds)
            elapsed = time.perf_counter() - started
            result.queries_run += outcome.queries_run
            result.queries_by_oracle[oracle.name] = (
                result.queries_by_oracle.get(oracle.name, 0) + outcome.queries_run
            )
            result.errors_ignored += outcome.errors_ignored
            novelty: dict[str, int] = {}
            arm = oracle_arm(oracle.name)
            for finding in outcome.findings:
                result.oracle_findings.append(finding)
                signatures_before = self.deduplicator.signature_count
                new_ids = self.deduplicator.observe_finding(finding, elapsed)
                self._record_finding(
                    trace,
                    novelty,
                    arm,
                    "oracle-finding",
                    signatures_before,
                    new_ids,
                    elapsed,
                    finding.signature,
                )
            for crash in outcome.crashes:
                result.crashes.append(crash)
                new_ids = self.deduplicator.observe_crash(crash, elapsed)
                trace.emit(
                    "finding",
                    elapsed=elapsed,
                    kind="crash",
                    arm=arm,
                    novel=bool(new_ids),
                    bug_ids=list(new_ids),
                )
            if self.scheduler is not None:
                self.scheduler.observe(arm, outcome.queries_run, novelty.get(arm, 0))

    def _global_cache_stats(self) -> dict[str, int]:
        """Snapshot of the process-level cache counters.

        Relate memo and WKT interner (both process-global), the campaign's
        own compiled-plan cache, and the reuse-layer materialisation
        counters — everything the round folds in as a before/after delta.
        """
        from repro.geometry.cache import geometry_cache_stats
        from repro.topology.relate import relate_cache_stats

        relate_stats = relate_cache_stats()
        interner = geometry_cache_stats()
        plans = self.plan_cache.stats()
        snapshot = {
            "relate_hits": relate_stats["hits"],
            "relate_misses": relate_stats["misses"],
            "interner_hits": interner["hits"],
            "interner_misses": interner["misses"],
            "interner_evictions": interner["evictions"],
            "plan_hits": plans["hits"],
            "plan_misses": plans["misses"],
            "plan_evictions": plans["evictions"],
        }
        for key, value in reuse_stats().items():
            snapshot[f"reuse_{key}"] = value
        return snapshot

    def _collect_cache_stats(
        self,
        result: CampaignResult,
        connections: "list[SpatialDatabase]",
        global_before: dict[str, int],
    ) -> None:
        """Fold one round's cache counters into the campaign result.

        Prepared-cache counters are connection-scoped and summed directly;
        the relate and interner counters are process-global, so the round
        contributes its before/after delta (which also keeps shard results
        additive under the parallel merge).
        """
        totals = Counter(result.cache_stats)
        for connection in connections:
            totals.update(connection.cache_stats())
        global_after = self._global_cache_stats()
        totals.update(
            {key: value - global_before.get(key, 0) for key, value in global_after.items()}
        )
        result.cache_stats = dict(totals)
