"""Engine-neutral result sets and the normalization rules behind them.

Two backends executing the same statement legitimately disagree on the
*representation* of the same answer: the in-process engine hands back
``bool``/``Fraction``/``Geometry`` objects where SQLite hands back
``0``/``1`` integers, floats and WKT text; a query without ``ORDER BY``
fixes no row order; and an engine may render an empty result geometry as
SQL ``NULL`` where another says ``GEOMETRYCOLLECTION EMPTY``.  The
cross-backend differential oracle is only sound if those representational
differences are erased *before* results are compared — otherwise every
query would "diverge" and the finding class would be noise.

The rules, applied by :func:`normalize_value` / :func:`normalize_rows`:

* **booleans** become ``0``/``1`` integers (SQL has no boolean wire type);
* **exact rationals** (:class:`fractions.Fraction`) become floats;
* **floats** are rounded to :data:`FLOAT_DECIMALS` decimal places (and
  ``-0.0`` collapses to ``0.0``) so last-ulp evaluation differences between
  engines do not read as divergences;
* **geometries** — whether objects or WKT text — are re-serialised through
  the exact geometry model to one canonical WKT, and an *empty* geometry
  normalises to ``None``: NULL-vs-EMPTY is a representational choice, not a
  logic bug (PostGIS itself is inconsistent about it across functions);
* **row order** is only significant when the query says so: without an
  ``ORDER BY``, rows are sorted under a total order over mixed-type cells.

These rules are shared by every adapter: a backend author implements
``execute`` returning raw rows and gets sound comparison for free.
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable, Sequence

from repro.errors import SQLExecutionError

#: decimal places floats are rounded to before comparison; the generated
#: coordinates are small integers, so two correct engines agree far beyond
#: this precision and anything past it is an engine bug, not rounding.
FLOAT_DECIMALS = 9

#: WKT type keywords that mark a string cell as a geometry rendering.
_WKT_PREFIXES = (
    "POINT",
    "LINESTRING",
    "POLYGON",
    "MULTIPOINT",
    "MULTILINESTRING",
    "MULTIPOLYGON",
    "GEOMETRYCOLLECTION",
)

#: a WKT cell is a type keyword followed by what WKT grammar allows next:
#: a coordinate list ``(``, a dimension marker (``Z``/``M``/``ZM``) or the
#: ``EMPTY`` token — optionally whitespace-separated.  A bare-prefix match
#: is not enough: free-text cells like ``POINTER`` or ``POLYGONAL region``
#: start with a keyword but are not geometry renderings.
_WKT_PATTERN = re.compile(
    r"^(?:" + "|".join(_WKT_PREFIXES) + r")\s*(?:\(|ZM?\b|M\b|EMPTY\b)",
    re.IGNORECASE,
)


@dataclass
class BackendResultSet:
    """The outcome of one statement, independent of the executing engine."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    command: str = "SELECT"

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SQLExecutionError(
                f"expected a scalar result, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def first_column(self) -> list[Any]:
        return [row[0] for row in self.rows]


def looks_like_wkt(text: str) -> bool:
    """True when a string cell is (the start of) a WKT rendering.

    Requires the type keyword to be followed by something the WKT grammar
    allows — ``(``, a ``Z``/``M``/``ZM`` dimension marker or ``EMPTY`` —
    so ordinary text that merely *starts* with a keyword (``POINTER``,
    ``POLYGONAL region``) is not dragged through geometry parsing.
    """
    return _WKT_PATTERN.match(text.lstrip()) is not None


def normalize_value(value: Any) -> Any:
    """One cell through the cross-backend normalization rules."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Fraction):
        value = float(value)
    if isinstance(value, float):
        rounded = round(value, FLOAT_DECIMALS)
        return 0.0 if rounded == 0.0 else rounded
    if isinstance(value, int):
        return value
    # Geometry objects and WKT text meet at one canonical serialisation.
    from repro.geometry.model import Geometry

    if isinstance(value, Geometry):
        return None if value.is_empty else value.wkt
    if isinstance(value, str) and looks_like_wkt(value):
        from repro.geometry import load_wkt

        try:
            geometry = load_wkt(value)
        except Exception:  # noqa: BLE001 - not WKT after all; keep the text
            return value
        return None if geometry.is_empty else geometry.wkt
    return value


def normalize_row(row: Sequence[Any]) -> tuple:
    return tuple(normalize_value(cell) for cell in row)


def _cell_sort_key(cell: Any) -> tuple:
    """A total order over normalized cells of mixed types."""
    if cell is None:
        return (0, "")
    if isinstance(cell, (int, float)):
        return (1, float(cell))
    return (2, str(cell))


def _row_sort_key(row: tuple) -> tuple:
    return tuple(_cell_sort_key(cell) for cell in row)


def normalize_rows(rows: Iterable[Sequence[Any]], ordered: bool) -> tuple:
    """A whole result through the rules; unordered results are sorted."""
    normalized = [normalize_row(row) for row in rows]
    if not ordered:
        normalized.sort(key=_row_sort_key)
    return tuple(normalized)


def is_ordered_query(sql: str) -> bool:
    """Whether row order is pinned by the statement (an ``ORDER BY``)."""
    return "order by" in sql.lower()


def values_equivalent(a: Any, b: Any) -> bool:
    """Cross-backend equality of two scalar results, post-normalization."""
    return normalize_value(a) == normalize_value(b)


def rows_equivalent(
    rows_a: Iterable[Sequence[Any]], rows_b: Iterable[Sequence[Any]], ordered: bool
) -> bool:
    """Cross-backend equality of two row lists, post-normalization."""
    return normalize_rows(rows_a, ordered) == normalize_rows(rows_b, ordered)
