"""The in-process engine behind the backend protocol (the default).

:class:`InProcessBackend` is a thin constructor shim: ``open_session``
returns exactly the :class:`~repro.engine.database.SpatialDatabase` that
:func:`repro.engine.database.connect` would have produced before the
protocol existed — the connection object *is* the session (it satisfies
:class:`~repro.backends.base.BackendSession` structurally), so the default
campaign executes the identical code path instruction for instruction.
The backend-equivalence suite (``tests/integration/
test_backend_equivalence.py``) locks that in finding-for-finding.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendSession, Capabilities
from repro.engine.database import SpatialDatabase, connect


class InProcessBackend(Backend):
    """MiniSDB, the emulated engine the reproduction has always driven."""

    name = "inprocess"

    def __init__(
        self,
        dialect: str = "postgis",
        bug_ids: tuple[str, ...] = (),
        fast_path: bool = True,
        vectorized: bool = True,
    ):
        self.dialect = dialect
        self.bug_ids = tuple(bug_ids)
        self.fast_path = fast_path
        self.vectorized = vectorized

    def capabilities(self) -> Capabilities:
        return Capabilities.from_dialect(self.dialect, backend=self.name)

    def open_session(self) -> BackendSession:
        return connect(
            self.dialect,
            bug_ids=self.bug_ids,
            fast_path=self.fast_path,
            vectorized=self.vectorized,
        )
