"""The cross-backend differential oracle: one query, two planners.

Metamorphic testing (the AEI oracle) and differential testing are
complementary bug-finding families — SQLancer-style work (Rigger & Su,
*Pivoted Query Synthesis*) treats cross-engine comparison as the baseline
metamorphic oracles improve on, and the paper's Section 5.3 analyses its
blind spots.  With the backend protocol in place, the reproduction can run
both at once: each scenario query already executed against the campaign's
primary backend is replayed, verbatim, on a *reference* backend holding the
same SDB1 data, and any post-normalization difference (see
:mod:`repro.backends.resultset`) is reported as a
:class:`BackendDivergence` — a finding class of its own, alongside the
affine-equivalence violations.

The reference backend runs the **fixed** engine (no injected faults): a
divergence then witnesses a seeded bug in the primary backend's release
emulation, which is exactly the ground truth the campaign's smoke checks
assert.  The comparator consumes no randomness, so enabling the mode never
perturbs the primary campaign's deterministic round stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.backends.base import Backend, BackendSession
from repro.backends.resultset import is_ordered_query, normalize_rows, normalize_value
from repro.errors import EngineCrash, ReproError


@dataclass
class BackendDivergence:
    """Two backends returned different results for the same statement."""

    #: the ScenarioQuery whose SDB1 statement diverged.
    query: Any
    scenario: str
    label: str
    backend_primary: str
    backend_reference: str
    result_primary: Any
    result_reference: Any
    sql: str
    #: injected bugs the primary backend recorded while producing its side.
    triggered_bug_ids: tuple[str, ...] = ()

    def signature(self) -> str:
        """Deduplication identity of the divergence."""
        if self.triggered_bug_ids:
            return "cross-backend|" + "+".join(sorted(set(self.triggered_bug_ids)))
        return f"cross-backend|{self.scenario}|{self.label}"

    def describe(self) -> str:
        return (
            f"[cross-backend {self.backend_primary} vs {self.backend_reference}] "
            f"[{self.scenario}] {self.sql} returned {self.result_primary!r} on "
            f"{self.backend_primary} but {self.result_reference!r} on "
            f"{self.backend_reference}"
        )


@dataclass
class ComparatorStats:
    """Bookkeeping one comparator accumulates over an oracle invocation."""

    queries_compared: int = 0
    errors_ignored: int = 0
    reference_seconds: float = 0.0


class CrossBackendComparator:
    """Replays scenario queries on a reference backend and compares results.

    One comparator serves one oracle invocation: :meth:`materialise` loads
    SDB1's statements into a fresh reference session, then :meth:`compare`
    is called once per executed scenario query with the primary backend's
    observed result.  Errors on the reference side are *ignored*, never
    reported: an engine that cannot run the statement at all is the
    inapplicability blind spot of differential testing (Section 5.3), not a
    logic bug.
    """

    def __init__(self, backend: Backend, primary_name: str):
        self.backend = backend
        self.primary_name = primary_name
        #: the reference's quirk flags drive its own IR rendering — each
        #: side of the comparison executes dialect-exact SQL from one plan.
        self.capabilities = backend.capabilities()
        self.session: BackendSession | None = None
        self.stats = ComparatorStats()

    # ------------------------------------------------------------ lifecycle
    def materialise(self, statements: list[str]) -> bool:
        """Load SDB1 into a fresh reference session; False disables the round."""
        session = None
        try:
            session = self.backend.open_session()
            for statement in statements:
                session.execute(statement)
        except (EngineCrash, ReproError):
            self.stats.errors_ignored += 1
            if session is not None:
                self.backend.close_session(session)
            self.session = None
            return False
        self.session = session
        return True

    def finish(self) -> ComparatorStats:
        """Collect the reference engine's time split and release the session."""
        if self.session is not None:
            self.stats.reference_seconds += self.session.stats.seconds_in_engine
            self.backend.close_session(self.session)
            self.session = None
        return self.stats

    # ----------------------------------------------------------- comparison
    def compare(
        self, query: Any, result_primary: Any, triggered_bug_ids: tuple[str, ...]
    ) -> BackendDivergence | None:
        """Replay one query on the reference; a divergence or ``None``."""
        if self.session is None:
            return None
        sql = query.render_original(self.capabilities)
        self.stats.queries_compared += 1
        try:
            if query.kind == "rows":
                ordered = is_ordered_query(sql)
                shown_primary: Any = normalize_rows(result_primary, ordered)
                shown_reference: Any = normalize_rows(self.session.query_rows(sql), ordered)
            else:
                shown_primary = normalize_value(result_primary)
                shown_reference = normalize_value(self.session.query_value(sql))
        except (EngineCrash, ReproError):
            self.stats.errors_ignored += 1
            return None
        if shown_primary == shown_reference:
            return None
        return BackendDivergence(
            query=query,
            scenario=getattr(query, "scenario", "?"),
            label=getattr(query, "label", "?"),
            backend_primary=self.primary_name,
            backend_reference=self.backend.name,
            result_primary=shown_primary,
            result_reference=shown_reference,
            # reporting shows the canonical rendering; the reference-side
            # execution used its own dialect-exact render of the same plan.
            sql=query.sql_original,
            triggered_bug_ids=tuple(triggered_bug_ids),
        )
