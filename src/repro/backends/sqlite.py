"""A real external query planner: stdlib ``sqlite3`` behind the protocol.

The adapter stores geometries as WKT ``TEXT`` and registers the repro
geometry library as deterministic scalar UDFs (WKT in, scalar/WKT out):
every ``ST_*`` function of the emulated dialect's catalog is routed through
the same :class:`~repro.engine.registry.FunctionRegistry` the in-process
engine evaluates — including, when the backend is created with a fault
profile, the injected-bug hooks — but *joins, filters, aggregation,
ordering and limits are planned and executed by SQLite itself*.  That is
the point: campaigns driving this backend fuzz an actual external query
planner rather than our own executor, and the cross-backend differential
mode can hold the two executions against each other.

Dialect quirks are *declared*, not translated: the backend's
:class:`~repro.backends.base.Capabilities` descriptor states that SQLite
takes bare ``'...'`` WKT literals (no ``::geometry`` cast), rejects
``FROM t JOIN t`` with a repeated unaliased table name, and sorts NULL keys
first on ascending ``ORDER BY`` terms — and the query-IR renderer
(:mod:`repro.core.qir`) emits dialect-exact SQL from those flags in one
pass.  The regex translation layer that used to re-derive the same rules
from already-rendered SQL strings is gone.

Exceptions raised inside a UDF surface from ``sqlite3`` as an opaque
``OperationalError``; the session stashes the original exception around
each statement so crash bugs (:class:`~repro.errors.EngineCrash`, with
their bug ids) and ignorable semantic errors keep their types across the
adapter boundary.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any

from repro.backends.base import Backend, Capabilities
from repro.backends.resultset import BackendResultSet
from repro.engine.database import ExecutionStats
from repro.engine.dialects import Dialect, get_dialect
from repro.engine.faults import FaultPlan
from repro.engine.registry import FunctionRegistry
from repro.errors import ReproError, SQLExecutionError
from repro.geometry.model import Geometry


def split_statements(sql: str) -> list[str]:
    """Split a script on ``;`` without splitting inside quoted literals."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for character in sql:
        if character == "'":
            in_string = not in_string
            current.append(character)
        elif character == ";" and not in_string:
            statements.append("".join(current))
            current = []
        else:
            current.append(character)
    statements.append("".join(current))
    return [statement for statement in statements if statement.strip()]


class SQLiteSession:
    """One in-memory SQLite database with the geometry library registered."""

    def __init__(self, dialect: Dialect, fault_plan: FaultPlan):
        self.dialect = dialect
        self.fault_plan = fault_plan
        self.stats = ExecutionStats()
        self.registry = FunctionRegistry(dialect, fault_plan, fast_path=False)
        self.connection = sqlite3.connect(":memory:")
        #: the original exception of the innermost failing UDF call; sqlite3
        #: flattens UDF errors to OperationalError, so execute() re-raises
        #: from here to preserve EngineCrash/SemanticGeometryError types.
        self._pending_error: BaseException | None = None
        self._register_functions()

    # ------------------------------------------------------------- plumbing
    def _register_functions(self) -> None:
        for function_name in sorted(self.dialect.functions):

            def call(*arguments: Any, _name: str = function_name) -> Any:
                try:
                    return _to_sqlite(self.registry.call(_name, list(arguments)))
                except BaseException as error:  # noqa: BLE001 - re-raised by execute()
                    self._pending_error = error
                    raise

            # NOT declared deterministic: the registry is stateful (fault
            # triggers, the prepared cache's probe-seen set), and the flag
            # would license SQLite to elide repeated constant-argument calls
            # — changing how often call-order-sensitive injected bugs fire
            # relative to the in-process engine.
            self.connection.create_function(function_name, -1, call)

    # ------------------------------------------------------------------ API
    def execute(self, sql: str) -> BackendResultSet:
        """Execute a script of one or more statements; returns the last result."""
        result = BackendResultSet(command="EMPTY")
        started = time.perf_counter()
        try:
            for statement in split_statements(sql):
                self.stats.statements += 1
                self._pending_error = None
                try:
                    cursor = self.connection.execute(statement)
                    rows = [tuple(row) for row in cursor.fetchall()]
                except sqlite3.Error as error:
                    pending, self._pending_error = self._pending_error, None
                    self.stats.errors += 1
                    if isinstance(pending, ReproError):
                        raise pending from error
                    if pending is not None:
                        raise SQLExecutionError(str(pending)) from pending
                    raise SQLExecutionError(f"sqlite: {error}") from error
                columns = (
                    [description[0] for description in cursor.description]
                    if cursor.description
                    else []
                )
                command = statement.split(None, 1)[0].upper() if statement.split() else "EMPTY"
                result = BackendResultSet(columns=columns, rows=rows, command=command)
        finally:
            self.stats.seconds_in_engine += time.perf_counter() - started
        return result

    def query_value(self, sql: str) -> Any:
        return self.execute(sql).scalar()

    def query_rows(self, sql: str) -> list[tuple]:
        return self.execute(sql).rows

    def build_auto_indexes(self) -> int:
        """SQLite plans with its own machinery; there is nothing to warm."""
        return 0

    def cache_stats(self) -> dict[str, int]:
        stats = self.registry.prepared_cache.stats()
        return {f"prepared_{key}": stats[key] for key in ("hits", "misses", "evictions")}

    def close(self) -> None:
        self.connection.close()


def _to_sqlite(value: Any) -> Any:
    """Marshal a registry result onto SQLite's scalar type system."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Geometry):
        return value.wkt
    if value is None or isinstance(value, (int, float, str, bytes)):
        return value
    # exact rationals and anything else numeric degrade to float
    return float(value)


class SQLiteBackend(Backend):
    """The stdlib ``sqlite3`` adapter (an actual external query planner)."""

    name = "sqlite"

    def __init__(
        self,
        dialect: str = "postgis",
        bug_ids: tuple[str, ...] = (),
        fast_path: bool = True,  # accepted for spec-compatibility; unused
        vectorized: bool = True,  # likewise — SQLite plans with its own engine
    ):
        self.dialect = dialect
        self.bug_ids = tuple(bug_ids)

    def capabilities(self) -> Capabilities:
        return Capabilities(
            backend=self.name,
            dialect=get_dialect(self.dialect),
            supports_fault_injection=True,
            supports_auto_indexes=False,
            supports_planner_toggles=False,
            supports_geometry_cast=False,
            supports_unaliased_self_join=False,
            orders_nulls_last=False,
            notes=(
                "geometries stored as WKT TEXT; ST_* registered as deterministic UDFs",
                "joins/aggregation/ordering planned by SQLite itself",
                "SQL rendered by the query IR's SQLite-flavoured renderer (docs/QUERY_IR.md)",
            ),
        )

    def open_session(self) -> SQLiteSession:
        return SQLiteSession(get_dialect(self.dialect), FaultPlan.from_ids(self.bug_ids))
