"""The execution-backend protocol.

The paper evaluates Spatter against four real engines; the reproduction
historically could only drive its own in-process emulated engine, because
the oracle, the campaign driver and every baseline constructed
:class:`~repro.engine.database.SpatialDatabase` connections directly.  This
module is the seam that breaks that coupling: a :class:`Backend` describes
*one way of executing spatial SQL* — the in-process engine, a stdlib
``sqlite3`` database with the repro geometry library registered as UDFs, or
(in the future) a DuckDB-spatial or PostGIS-over-the-wire adapter — and the
rest of the system talks to it through three small surfaces:

* :class:`Capabilities` — what the backend can do (supported functions,
  fault injection, planner toggles, dialect quirks).  Scenarios and
  baselines consult this descriptor instead of reaching into the dialect
  registry, so capability gating works identically for every adapter.
* ``Backend.open_session()`` — the connection lifecycle.  A session is any
  object satisfying :class:`BackendSession` (a structural protocol, so the
  existing :class:`SpatialDatabase` is already a valid session without a
  wrapper — which is what keeps the default campaign byte-identical to the
  pre-protocol code path).
* the backend **registry** — backends are created from their registered
  *name* plus plain-data options (dialect, bug ids, fast-path flag), which
  is what lets a :class:`~repro.core.campaign.CampaignConfig` cross the
  parallel orchestrator's pickling boundary carrying only strings: each
  worker process re-creates its own backend from the spec.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.engine.dialects import Dialect, get_dialect


@dataclass(frozen=True)
class Capabilities:
    """What one backend can do, as consulted by scenarios and baselines.

    The descriptor is deliberately duck-compatible with
    :class:`~repro.engine.dialects.Dialect` for the read-only catalog
    queries (``supports_function``, ``topological_predicates``, ...), so
    every call site that used to take a dialect can take a capabilities
    descriptor without change — but it additionally records the
    *backend-level* facts a dialect knows nothing about: whether the
    injected-fault layer exists, whether the planner exposes the
    seqscan/index toggles the Index baseline needs, and dialect quirks such
    as whether ``'...'::geometry`` literal casts parse.
    """

    #: registry name of the backend this descriptor came from.
    backend: str
    #: the emulated system whose function catalog the backend exposes.
    dialect: Dialect
    #: the backend evaluates the injected-bug catalog (ground-truth dedup
    #: and the release-under-test emulation are available).
    supports_fault_injection: bool = True
    #: the backend can build the fast-path auto STR indexes.
    supports_auto_indexes: bool = True
    #: the backend honours ``SET enable_seqscan`` (the Index baseline's
    #: whole mechanism); adapters over engines with their own planner do not.
    supports_planner_toggles: bool = True
    #: the backend's SQL parser accepts ``'...'::geometry`` literal casts.
    supports_geometry_cast: bool = True
    #: the backend accepts ``FROM t JOIN t`` with a repeated unaliased table
    #: name (collapsing it to one binding, like the in-process engine);
    #: backends that reject the ambiguity make the IR renderer alias the
    #: earlier occurrence instead.
    supports_unaliased_self_join: bool = True
    #: ascending ``ORDER BY`` places NULL keys last by default (the
    #: PostgreSQL rule the in-process engine emulates); backends defaulting
    #: to NULLS FIRST make the renderer spell ``NULLS LAST`` explicitly.
    orders_nulls_last: bool = True
    #: free-form quirk notes, surfaced by ``--list-backends``.
    notes: tuple[str, ...] = ()

    # -- dialect-compatible catalog surface ---------------------------------
    @property
    def name(self) -> str:
        """The dialect name (kept for drop-in use where a Dialect went)."""
        return self.dialect.name

    @property
    def label(self) -> str:
        return self.dialect.label

    def supports_function(self, function_name: str) -> bool:
        return self.dialect.supports_function(function_name)

    def supports_operator(self, operator: str) -> bool:
        return self.dialect.supports_operator(operator)

    def topological_predicates(self) -> list[str]:
        return self.dialect.topological_predicates()

    def editing_functions(self) -> list[str]:
        return self.dialect.editing_functions()

    # ----------------------------------------------------------------- misc
    @classmethod
    def from_dialect(cls, dialect: Dialect | str, backend: str = "inprocess") -> "Capabilities":
        """The full-featured descriptor of the in-process engine."""
        resolved = get_dialect(dialect) if isinstance(dialect, str) else dialect
        return cls(backend=backend, dialect=resolved)

    def summary(self) -> str:
        flags = []
        if self.supports_fault_injection:
            flags.append("faults")
        if self.supports_auto_indexes:
            flags.append("auto-indexes")
        if self.supports_planner_toggles:
            flags.append("planner-toggles")
        if not self.supports_geometry_cast:
            flags.append("no-::geometry-cast")
        if not self.supports_unaliased_self_join:
            flags.append("aliased-self-joins")
        if not self.orders_nulls_last:
            flags.append("explicit-nulls-last")
        return f"{self.backend}({self.dialect.name}): {', '.join(flags) or 'minimal'}"


@runtime_checkable
class BackendSession(Protocol):
    """One open connection to a backend (structural protocol).

    :class:`~repro.engine.database.SpatialDatabase` satisfies this protocol
    as-is; adapter sessions implement the same surface.  ``stats`` must
    expose ``seconds_in_engine`` and ``statements`` counters (the Figure 7
    time split), ``fault_plan`` must expose a ``triggered`` list (empty and
    never growing is fine for backends without fault injection).

    Two further surfaces are *optional* and discovered by duck typing —
    the reuse layer probes for them with ``getattr`` and falls back to the
    SQL path when absent, so adapter sessions never have to implement
    them: ``load_geometry_tables(tables, include_ids=True)`` bulk-loads
    already-parsed geometry tables (the in-process engine's implementation
    mirrors the CREATE/INSERT replay statement for statement), and
    ``execute_parsed(statements)`` runs pre-parsed engine-AST statements
    (the compiled-plan cache's entry point).  External backends like
    ``sqlite`` expose neither and transparently run the legacy path.
    """

    dialect: Dialect
    fault_plan: Any
    stats: Any

    def execute(self, sql: str) -> Any: ...

    def query_value(self, sql: str) -> Any: ...

    def query_rows(self, sql: str) -> list[tuple]: ...

    def build_auto_indexes(self) -> int: ...

    def cache_stats(self) -> dict[str, int]: ...


class Backend:
    """One way of executing spatial SQL (abstract base).

    Concrete backends are constructed by :func:`create_backend` from their
    registered name plus plain-data options, never pickled themselves: the
    campaign config carries the *spec* (strings) across process boundaries
    and every worker builds a fresh backend.
    """

    #: registry name (the ``--backend`` CLI token).
    name: str = ""

    def capabilities(self) -> Capabilities:
        raise NotImplementedError

    def open_session(self) -> BackendSession:
        """A fresh connection; sessions are independent and disposable."""
        raise NotImplementedError

    def close_session(self, session: BackendSession) -> None:
        """Release a session's resources (default: ``session.close()`` if any)."""
        close = getattr(session, "close", None)
        if callable(close):
            close()

    def describe(self) -> str:
        return self.capabilities().summary()


# ---------------------------------------------------------------------------
# Registry: backends are created from names + plain-data options.
# ---------------------------------------------------------------------------

#: name -> (factory, one-line description).  The factory signature is the
#: normalised option set every adapter understands; adapters ignore options
#: that do not apply to them (e.g. ``fast_path`` for SQLite).
_FACTORIES: dict[str, tuple[Callable[..., Backend], str]] = {}


def register_backend(
    name: str, factory: Callable[..., Backend], description: str = ""
) -> None:
    """Register a backend factory under a unique name."""
    key = name.strip().lower()
    if not key:
        raise ValueError("a backend must have a non-empty name")
    if key in _FACTORIES:
        raise ValueError(f"backend {key!r} is already registered")
    _FACTORIES[key] = (factory, description)


def available_backends() -> list[str]:
    """Names of every registered backend, sorted."""
    return sorted(_FACTORIES)


def backend_description(name: str) -> str:
    """The registration-time one-liner for ``--list-backends``."""
    _, description = _FACTORIES[_resolve_name(name)]
    return description


def _resolve_name(name: str) -> str:
    key = str(name).strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    return key


def _factory_accepts(factory: Callable[..., Backend], option: str) -> bool:
    """True if the factory's signature names the (keyword) option.

    Options added after a factory was written are silently dropped so
    adapters registered against the older, narrower option set — including
    ``**options`` passthroughs onto such adapters — keep working unchanged;
    a factory opts in by naming the parameter.
    """
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    return option in parameters


def create_backend(
    name: str,
    dialect: str = "postgis",
    bug_ids: Iterable[str] | tuple[str, ...] = (),
    fast_path: bool = True,
    vectorized: bool = True,
) -> Backend:
    """Create a backend from its registered name and plain-data options.

    This is the picklable-by-spec constructor the campaign layers use: the
    arguments are exactly what a :class:`CampaignConfig` carries, so a
    worker process can rebuild the backend from the config alone.
    """
    factory, _ = _FACTORIES[_resolve_name(name)]
    kwargs: dict[str, Any] = {
        "dialect": dialect,
        "bug_ids": tuple(bug_ids),
        "fast_path": fast_path,
    }
    if _factory_accepts(factory, "vectorized"):
        kwargs["vectorized"] = vectorized
    return factory(**kwargs)
