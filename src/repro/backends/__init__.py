"""Execution backends: the adapter seam between the campaign and an engine.

See :mod:`repro.backends.base` for the protocol and ``docs/BACKENDS.md``
for the adapter-author guide.  Importing this package registers the two
built-in backends:

* ``inprocess`` — the emulated MiniSDB engine (the default; byte-identical
  to the pre-protocol execution path);
* ``sqlite`` — a stdlib ``sqlite3`` database with the repro geometry
  library registered as deterministic UDFs, i.e. an actual external query
  planner.
"""

from __future__ import annotations

from repro.backends.base import (
    Backend,
    BackendSession,
    Capabilities,
    available_backends,
    backend_description,
    create_backend,
    register_backend,
)
from repro.backends.differential import BackendDivergence, CrossBackendComparator
from repro.backends.inprocess import InProcessBackend
from repro.backends.resultset import (
    BackendResultSet,
    is_ordered_query,
    normalize_rows,
    normalize_value,
    rows_equivalent,
    values_equivalent,
)
from repro.backends.sqlite import SQLiteBackend

__all__ = [
    "Backend",
    "BackendDivergence",
    "BackendResultSet",
    "BackendSession",
    "Capabilities",
    "CrossBackendComparator",
    "InProcessBackend",
    "SQLiteBackend",
    "available_backends",
    "backend_description",
    "create_backend",
    "is_ordered_query",
    "normalize_rows",
    "normalize_value",
    "register_backend",
    "rows_equivalent",
    "values_equivalent",
]

register_backend(
    "inprocess",
    lambda dialect, bug_ids, fast_path, vectorized=True: InProcessBackend(
        dialect=dialect, bug_ids=bug_ids, fast_path=fast_path, vectorized=vectorized
    ),
    "the emulated in-process engine (MiniSDB); full fault injection, "
    "planner toggles, fast-path auto-indexes and the batch executor",
)

register_backend(
    "sqlite",
    lambda dialect, bug_ids, fast_path, vectorized=True: SQLiteBackend(
        dialect=dialect, bug_ids=bug_ids, fast_path=fast_path, vectorized=vectorized
    ),
    "stdlib sqlite3 with the repro geometry library as deterministic UDFs; "
    "SQLite plans the joins",
)
