"""Exception hierarchy shared by every repro subpackage.

The hierarchy mirrors how a real spatial DBMS surfaces problems: parse
errors for malformed WKT or SQL, semantic errors for invalid geometries or
unsupported functions, and execution errors for runtime failures.  Spatter
(the tester) treats :class:`SemanticGeometryError` the way the paper treats
errors returned by the SDBMS for semantically invalid shapes: it ignores
them and moves on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class WKTParseError(ReproError):
    """Raised when a WKT string cannot be parsed."""


class GeometryTypeError(ReproError):
    """Raised when a geometry of an unexpected type is supplied."""


class SemanticGeometryError(ReproError):
    """Raised when a geometry is syntactically valid but semantically invalid.

    Example: a polygon whose exterior ring self-intersects.  Real SDBMSs
    reject such inputs with an error, which Spatter ignores.
    """


class SQLParseError(ReproError):
    """Raised when a SQL statement cannot be tokenized or parsed."""


class SQLExecutionError(ReproError):
    """Raised when a parsed SQL statement fails during execution."""


class UnknownFunctionError(SQLExecutionError):
    """Raised when a SQL statement references a function the dialect lacks."""


class TableError(SQLExecutionError):
    """Raised for missing tables, duplicate tables, or column mismatches."""


class EngineCrash(ReproError):
    """Raised by an injected crash bug.

    A real SDBMS crash terminates the server process; in the in-process
    engine the crash is modelled as this dedicated exception type so the
    campaign runner can distinguish crash bugs from ordinary errors.
    """

    def __init__(self, message: str, bug_id: str | None = None):
        super().__init__(message)
        self.bug_id = bug_id
