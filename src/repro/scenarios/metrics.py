"""Affine-covariant metric scenarios: aggregate measures that *scale*.

Topological answers are affine-invariant; metric answers are affine-
**covariant**: they change under the transformation, but predictably.
For an affine map with linear part ``A``,

* every area is multiplied by ``|det A|`` — for any invertible map, and
* every length is multiplied by ``sqrt(|det A|)`` — provided the map is a
  similarity (a general affine map stretches directions unequally and no
  single length factor exists).

These scenarios aggregate a measure over a whole table,

    SELECT SUM(ST_Area(g))   FROM t      (general affine)
    SELECT SUM(ST_Length(g)) FROM t      (similarity only)

and expect the SDB2 sum to be the SDB1 sum scaled by the transformation's
factor — the first expectation functions in the registry that are not plain
equality.  Comparison uses a relative tolerance because the engine hands
back floats (areas are exact rationals internally, lengths involve square
roots).

Both scenarios opt out of canonicalised follow-ups: element-level
canonicalization removes duplicate elements, which preserves the denoted
point set (and every DE-9IM relation) but not a *sum* of per-row measures.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.affine import AffineTransformation
from repro.core.generator import DatabaseSpec
from repro.core.qir import Aggregate, Column, FunctionCall, Select, TableRef
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily

#: relative tolerance for float comparisons; the inputs are small integer
#: coordinates, so anything past 1e-9 is an engine bug, not rounding.
_REL_TOL = 1e-9


class _MetricScenario(Scenario):
    """Common machinery: SUM a measure over one table, expect a scaled sum."""

    canonicalize_followup = False
    #: the aggregated ST_* function (set by subclasses).
    metric_function: str = ""

    def scale_factor(self, transformation: AffineTransformation) -> float:
        raise NotImplementedError

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        tables = spec.table_names()
        queries = []
        for _ in range(count):
            table = context.rng.choice(tables)
            measure = FunctionCall(self.metric_function, (Column("g", table),))
            ir = Select(
                projection=(Aggregate("SUM", measure),), sources=(TableRef(table),)
            )
            queries.append(ScenarioQuery.from_ir(self.name, self.metric_function, ir))
        return queries

    def expected_followup(self, query: ScenarioQuery, original: Any, transformation: AffineTransformation) -> Any:
        if original is None:  # SUM over an empty table is NULL
            return None
        return self.scale_factor(transformation) * float(original)

    def results_match(self, expected: Any, actual: Any) -> bool:
        if expected is None or actual is None:
            return expected is None and actual is None
        return math.isclose(float(expected), float(actual), rel_tol=_REL_TOL, abs_tol=_REL_TOL)


class MetricAreaScenario(_MetricScenario):
    name = "metric-area"
    title = "SUM(ST_Area) scaled by the transformation's |determinant|"
    family = TransformationFamily.GENERAL
    requires_functions = ("st_area",)
    metric_function = "st_area"
    paper_anchor = "Section 7 (beyond invariance); affine area covariance"

    def scale_factor(self, transformation: AffineTransformation) -> float:
        return float(transformation.area_scale)


class MetricLengthScenario(_MetricScenario):
    name = "metric-length"
    title = "SUM(ST_Length) scaled by the similarity's length factor"
    family = TransformationFamily.SIMILARITY
    requires_functions = ("st_length",)
    metric_function = "st_length"
    paper_anchor = "Section 7 (beyond invariance); similarity length covariance"

    def scale_factor(self, transformation: AffineTransformation) -> float:
        return transformation.length_scale
