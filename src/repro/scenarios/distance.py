"""Distance-predicate join scenario: thresholds scaled with the data.

``ST_DWithin``/``ST_DFullyWithin`` take an absolute distance argument, so
the paper's oracle simply skipped them (general affine maps do not preserve
distances).  Under a *similarity* transformation, however, every distance is
multiplied by the same factor ``s = sqrt(|det|)``, so the predicate survives
if the threshold is scaled too:

    SDB1:  SELECT COUNT(*) FROM a JOIN b ON st_dwithin(a.g, b.g, d)
    SDB2:  SELECT COUNT(*) FROM a JOIN b ON st_dwithin(a.g, b.g, d*s)

This re-admits the distance predicates the topological scenario excludes —
the Section 7 extension the paper sketches — and reaches the distance
machinery (and its EMPTY-element recursion bugs) that no purely topological
query ever calls.  The family's sampler draws integer scale factors, so the
scaled threshold stays exact.
"""

from __future__ import annotations

from repro.core.generator import DatabaseSpec
from repro.core.qir import rewrite_literals
from repro.core.queries import DISTANCE_PREDICATES, TopologicalQuery
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily


class DistanceJoinScenario(Scenario):
    name = "distance-join"
    title = "COUNT over a join on a distance predicate with a scaled threshold"
    family = TransformationFamily.SIMILARITY
    paper_anchor = "Section 7 (distance extension); Section 4.2 threshold scaling"

    def is_applicable(self, dialect) -> bool:
        return any(dialect.supports_function(p) for p in DISTANCE_PREDICATES)

    def admits_transformation(self, transformation) -> bool:
        """Similarities with an *integer* length scale only.

        An irrational scale (e.g. the 45°-like similarity ``(1,-1;1,1)``,
        ``s = sqrt(2)``) would force a lossy float threshold into the
        follow-up SQL, and a last-ulp difference at an exact predicate
        boundary would read as a discrepancy on a bug-free engine.  The
        family's sampler always draws integer scales, so this only filters
        explicitly supplied transformations.
        """
        if not self.family.admits(transformation):
            return False
        scale = transformation.length_scale
        return scale == int(scale)

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        predicates = [p for p in DISTANCE_PREDICATES if context.capabilities.supports_function(p)]
        tables = spec.table_names()
        scale = context.transformation.length_scale
        queries = []
        for _ in range(count):
            predicate = context.rng.choice(predicates)
            table_a = context.rng.choice(tables)
            table_b = context.rng.choice(tables)
            distance = context.rng.randint(1, 20)
            ir = TopologicalQuery(table_a, table_b, predicate, distance=distance).ir()
            # admits_transformation guarantees an integer scale, keeping the
            # scaled threshold (and so the follow-up comparison) exact; the
            # SDB2 plan is the SDB1 plan with the threshold literal rewritten
            # structurally, the query-side analogue of transforming the data.
            followup_ir = rewrite_literals(ir, integer=lambda value: value * int(scale))
            queries.append(ScenarioQuery.from_ir(self.name, predicate, ir, followup_ir))
        return queries
