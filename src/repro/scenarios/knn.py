"""K-nearest-neighbour scenario (the paper's Section 7 extension).

The k rows nearest to a query point, evaluated via

    SELECT id FROM t ORDER BY ST_Distance(g, '<point>'::geometry), id LIMIT k

must be the *same rows* after a similarity transformation is applied to the
data and the query point alike: rotation, translation and uniform scaling
multiply every distance by one factor and therefore preserve the relative
distance order (shearing does not, which is exactly why the scenario
declares the similarity family).  Ties are broken by row id, so the row
lists compare deterministically.

This absorbs the standalone ``repro.core.knn`` oracle into the registry:
the oracle materialises specs with stable ``id`` columns for every
scenario, so the neighbour lists join the same campaign/dedup pipeline as
the count scenarios.
"""

from __future__ import annotations

from repro.core.generator import DatabaseSpec
from repro.core.qir import (
    Column,
    FunctionCall,
    GeometryLiteral,
    OrderItem,
    Select,
    TableRef,
    render,
    rewrite_literals,
)
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily


def knn_ir(table: str, query_point_wkt: str, k: int) -> Select:
    """The KNN query template: order by distance to the query point."""
    distance = FunctionCall("ST_Distance", (Column("g"), GeometryLiteral(query_point_wkt)))
    return Select(
        projection=(Column("id"),),
        sources=(TableRef(table),),
        order_by=(OrderItem(distance), OrderItem(Column("id"))),
        limit=k,
    )


def knn_sql(table: str, query_point_wkt: str, k: int) -> str:
    """Canonical rendering of :func:`knn_ir` (kept for existing callers)."""
    return render(knn_ir(table, query_point_wkt, k))


class KNNScenario(Scenario):
    name = "knn"
    title = "k nearest neighbours of a transformed query point, by row id"
    family = TransformationFamily.SIMILARITY
    requires_functions = ("st_distance",)
    paper_anchor = "Section 7 (KNN extension)"

    #: the paper's sketch uses small k; the builder draws from this range.
    k_range: tuple[int, int] = (1, 5)

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        tables = spec.table_names()
        queries = []
        for _ in range(count):
            table = context.rng.choice(tables)
            x = context.rng.randint(-10, 10)
            y = context.rng.randint(-10, 10)
            k = context.rng.randint(*self.k_range)
            point = f"POINT({x} {y})"
            ir = knn_ir(table, point, k)
            # The SDB2 plan moves the query point through the follow-up
            # pipeline alongside the data, rewriting the literal in place.
            followup_ir = rewrite_literals(ir, geometry=context.followup_wkt)
            queries.append(
                ScenarioQuery.from_ir(self.name, f"k={k}", ir, followup_ir, kind="rows")
            )
        return queries
