"""The metamorphic scenario registry.

One registry of every query scenario Spatter can validate over an AEI pair,
in a stable order (the reference JOIN template first).  The oracle, the
campaign driver, the CLI and the docs-coverage check all iterate this
registry instead of hard-coding query shapes; adding a scenario means
registering a :class:`~repro.scenarios.base.Scenario` subclass here and
documenting it in ``docs/SCENARIOS.md`` (CI enforces the latter).
"""

from __future__ import annotations

from repro.engine.dialects import Dialect
from repro.scenarios.base import (
    Scenario,
    ScenarioContext,
    ScenarioQuery,
    TransformationFamily,
    scan_subplans,
)
from repro.scenarios.distance import DistanceJoinScenario
from repro.scenarios.filters import AttributeFilterScenario
from repro.scenarios.joins import JoinChainScenario
from repro.scenarios.knn import KNNScenario, knn_ir, knn_sql
from repro.scenarios.metrics import MetricAreaScenario, MetricLengthScenario
from repro.scenarios.topological import TopologicalJoinScenario

__all__ = [
    "Scenario",
    "ScenarioContext",
    "ScenarioQuery",
    "TransformationFamily",
    "all_scenarios",
    "applicable_scenarios",
    "get_scenario",
    "knn_ir",
    "knn_sql",
    "register_scenario",
    "resolve_scenarios",
    "scan_subplans",
    "scenario_names",
]

#: registration order is the execution and reporting order of a campaign
#: round; the reference scenario comes first.
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario instance to the registry (name must be unique)."""
    if not scenario.name:
        raise ValueError("a scenario must declare a non-empty name")
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


for _scenario_class in (
    TopologicalJoinScenario,
    AttributeFilterScenario,
    JoinChainScenario,
    DistanceJoinScenario,
    KNNScenario,
    MetricAreaScenario,
    MetricLengthScenario,
):
    register_scenario(_scenario_class())


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def scenario_names() -> list[str]:
    """Registry names, in registration order."""
    return list(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by its registry name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def applicable_scenarios(dialect) -> list[Scenario]:
    """The scenarios whose capability requirements the catalog satisfies.

    ``dialect`` may be a :class:`~repro.engine.dialects.Dialect` or a
    backend :class:`~repro.backends.base.Capabilities` descriptor.
    """
    return [scenario for scenario in all_scenarios() if scenario.is_applicable(dialect)]


def resolve_scenarios(names, dialect) -> list[Scenario]:
    """Turn a user-facing scenario selection into scenario instances.

    ``dialect`` is the catalog consulted for applicability — a
    :class:`~repro.engine.dialects.Dialect` or a backend
    :class:`~repro.backends.base.Capabilities` descriptor.
    ``None`` (and the special token ``"all"``) selects every scenario
    applicable to the dialect — the campaign default, where capability
    gating silently narrows the set.  Explicit names are honoured in order
    and deduplicated (registry scenarios are singletons, and per-scenario
    query budgets are keyed by instance), but an explicitly requested
    scenario the dialect cannot run raises: silently dropping it would let
    a zero-query campaign read like a clean engine.
    """
    if names is None:
        return applicable_scenarios(dialect)
    selected: list[Scenario] = []
    for name in names:
        if isinstance(name, Scenario):
            scenario = name
        elif str(name).lower() == "all":
            return applicable_scenarios(dialect)
        else:
            scenario = get_scenario(str(name))
        if not scenario.is_applicable(dialect):
            raise ValueError(
                f"scenario {scenario.name!r} is not applicable to dialect "
                f"{dialect.name!r} (it requires "
                f"{', '.join(scenario.requires_functions) or 'features the dialect lacks'})"
            )
        if scenario not in selected:
            selected.append(scenario)
    return selected
