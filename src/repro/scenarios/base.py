"""The metamorphic-scenario abstraction.

The paper's "Results Validation" step (Figure 5) exercises one query shape —
``SELECT COUNT(*) FROM a JOIN b ON <TopoRlt>`` — and checks equality of the
two counts.  Its Section 7 sketches how the same affine-equivalence idea
extends to KNN and distance queries once the transformation family is
restricted, and affine-invariant query logics show a much larger family of
queries whose answers transform *predictably* (not necessarily identically)
under affine maps.

A :class:`Scenario` packages one such query shape as a first-class object:

* a **query builder** that instantiates concrete SQL for the original
  database (SDB1) and its affine follow-up (SDB2) — the two strings may
  differ when the query embeds a geometry literal or a distance threshold
  that must be transformed alongside the data;
* an **admissible transformation family** (:class:`TransformationFamily`)
  declaring which affine maps keep the scenario's metamorphic relation
  valid — the oracle samples follow-up transformations from it and skips
  the scenario when handed an inadmissible explicit transformation;
* an **expectation function** mapping the SDB1 result to the *expected*
  SDB2 result, generalizing the original equality-of-counts check
  (a metric scenario, for example, expects the SDB2 sum to be the SDB1 sum
  scaled by the transformation's determinant).

Scenario instances are stateless and queries are plain dataclasses, so both
travel safely through the multiprocessing boundary of the parallel
orchestrator.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Capabilities

from repro.core.affine import (
    AffineTransformation,
    random_affine_transformation,
    rigid_motion_transformation,
    similarity_affine_transformation,
)
from repro.core.generator import DatabaseSpec
from repro.core.qir import Column, Select, TableRef, render
from repro.engine.dialects import Dialect


def scan_subplans(select: Select, projection_column: str = "id") -> list[Select]:
    """The single-table scans underlying a join plan, as IR sub-plans.

    For every base-table source of ``select`` (FROM items and JOIN arms
    alike, in chain order) this derives a ``SELECT <column> FROM <table>``
    plan over the *unaliased* table.  The set-theoretic join oracle
    (:mod:`repro.oracles.set_theoretic`) executes these scans alongside the
    join itself to anchor its algebraic relations — the join result must be
    contained in the scans' cross product and bounded by the product of
    their cardinalities.  Derived-table sources carry no base rows to scan
    and are skipped.
    """
    chain = list(select.sources) + [join.source for join in select.joins]
    return [
        Select(projection=(Column(projection_column),), sources=(TableRef(source.name),))
        for source in chain
        if isinstance(source, TableRef)
    ]


class TransformationFamily(enum.Enum):
    """The transformation families a scenario may declare admissible.

    Each family knows how to *sample* a random member and how to decide
    whether an explicitly supplied transformation is *admitted* — the single
    place where rules like "distance queries need a similarity" are stated
    (they used to live as an oracle-side skip flag).
    """

    #: any invertible affine map (Algorithm 2): topological relations only.
    GENERAL = "general"
    #: uniform scaling of an orthogonal map + translation: preserves the
    #: relative order of distances (KNN-safe) and scales every length by the
    #: same factor.
    SIMILARITY = "similarity"
    #: similarity with unit scale: preserves absolute distances.
    RIGID = "rigid"

    def sample(self, rng: random.Random) -> AffineTransformation:
        """Draw a random transformation from the family."""
        return _SAMPLERS[self](rng)

    def admits(self, transformation: AffineTransformation) -> bool:
        """True when the transformation belongs to the family."""
        if self is TransformationFamily.GENERAL:
            return transformation.is_invertible
        if self is TransformationFamily.SIMILARITY:
            return transformation.is_similarity
        return transformation.is_rigid


_SAMPLERS: dict[TransformationFamily, Callable[[random.Random], AffineTransformation]] = {
    TransformationFamily.GENERAL: random_affine_transformation,
    TransformationFamily.SIMILARITY: similarity_affine_transformation,
    TransformationFamily.RIGID: rigid_motion_transformation,
}


@dataclass(frozen=True)
class ScenarioQuery:
    """One instantiated scenario query: both sides of an AEI pair.

    The query is a typed IR value (:mod:`repro.core.qir`); the SQL fields
    hold its canonical PostgreSQL-flavoured rendering for reporting and
    deduplication, while execution renders the IR per executing backend via
    :meth:`render_original`/:meth:`render_followup`.  Everything here is
    plain data (frozen dataclasses, no callables), so discrepancies
    embedding a query pickle across the parallel orchestrator's process
    boundary.
    """

    #: registry name of the scenario that built the query.
    scenario: str
    #: signature-relevant label (predicate, metric, ``k``...) used by
    #: deduplication and reporting.
    label: str
    #: canonical rendering of the SDB1 query (reporting/dedup surface).
    sql_original: str
    #: canonical rendering of the SDB2 query; differs from ``sql_original``
    #: when a literal or threshold is transformed.
    sql_followup: str
    #: ``"scalar"`` (single value) or ``"rows"`` (ordered row list).
    kind: str = "scalar"
    #: the SDB1 query plan; ``None`` only for hand-built legacy instances.
    ir_original: Select | None = None
    #: the SDB2 query plan (the SDB1 plan with literals structurally
    #: rewritten through the follow-up pipeline).
    ir_followup: Select | None = None

    @classmethod
    def from_ir(
        cls,
        scenario: str,
        label: str,
        ir_original: Select,
        ir_followup: Select | None = None,
        kind: str = "scalar",
    ) -> "ScenarioQuery":
        """Build a query from its IR; the SQL fields are canonical renders."""
        followup = ir_followup if ir_followup is not None else ir_original
        return cls(
            scenario=scenario,
            label=label,
            sql_original=render(ir_original),
            sql_followup=render(followup),
            kind=kind,
            ir_original=ir_original,
            ir_followup=followup,
        )

    def render_original(self, target=None) -> str:
        """The SDB1 statement rendered for one backend's dialect quirks."""
        if self.ir_original is None:
            return self.sql_original
        return render(self.ir_original, target)

    def render_followup(self, target=None) -> str:
        """The SDB2 statement rendered for one backend's dialect quirks."""
        if self.ir_followup is None:
            return self.sql_followup
        return render(self.ir_followup, target)

    def sql(self) -> str:
        """The SDB1 statement (the historical single-SQL surface)."""
        return self.sql_original

    def followup_sql(self) -> str:
        """The SDB2 statement."""
        return self.sql_followup

    @property
    def predicate(self) -> str:
        """Back-compat alias: older tooling read ``query.predicate``."""
        return self.label

    def describe(self) -> str:
        if self.sql_original == self.sql_followup:
            return self.sql_original
        return f"{self.sql_original}  /  {self.sql_followup}"


@dataclass
class ScenarioContext:
    """Everything a scenario needs to instantiate queries for one AEI pair."""

    dialect: Dialect
    rng: random.Random
    transformation: AffineTransformation
    #: WKT -> WKT mapping implementing the oracle's follow-up pipeline
    #: (canonicalize, then transform) so literals embedded in follow-up SQL
    #: go through exactly the same derivation as the stored geometries.
    followup_wkt: Callable[[str], str] = field(default=lambda wkt: wkt)
    #: what the executing backend can do; scenarios consult this instead of
    #: the dialect registry so query shapes gate identically on every
    #: adapter.  Defaults to the in-process engine's full-featured
    #: descriptor over ``dialect``.
    capabilities: "Capabilities | None" = None

    def __post_init__(self) -> None:
        if self.capabilities is None:
            from repro.backends.base import Capabilities

            self.capabilities = Capabilities.from_dialect(self.dialect)


class Scenario:
    """Base class: one metamorphic query scenario.

    Subclasses set the class attributes and implement
    :meth:`build_queries`; they may override :meth:`expected_followup`
    (default: the SDB2 result must equal the SDB1 result) and
    :meth:`results_match` (default: equality).
    """

    #: registry name (also the ``--scenarios`` CLI token).
    name: str = ""
    #: one-line human description for ``--list-scenarios`` and the docs.
    title: str = ""
    #: the admissible transformation family.
    family: TransformationFamily = TransformationFamily.GENERAL
    #: whether the follow-up database this scenario validates against may be
    #: canonicalised.  Metric scenarios opt out: element-level
    #: canonicalization removes duplicate elements, which preserves the
    #: denoted point set (and so every topological relation) but not
    #: summed areas or lengths.
    canonicalize_followup: bool = True
    #: functions the dialect must expose for the scenario to be applicable.
    requires_functions: tuple[str, ...] = ()
    #: pointer into the paper / related work for the docs catalog.
    paper_anchor: str = ""

    # -------------------------------------------------------------- gating
    def is_applicable(self, dialect) -> bool:
        """Capability gating: can this scenario run against the backend?

        ``dialect`` is anything exposing the catalog surface — a
        :class:`~repro.engine.dialects.Dialect` or a backend's
        :class:`~repro.backends.base.Capabilities` descriptor (the two are
        duck-compatible by design; the oracle always passes capabilities).
        """
        return all(dialect.supports_function(name) for name in self.requires_functions)

    def admits_transformation(self, transformation: AffineTransformation) -> bool:
        """Admissibility of one explicit transformation.

        Defaults to family membership; scenarios may add constraints beyond
        the family (e.g. the distance scenario needs an *exact* threshold
        scale factor).  The oracle only consults this for explicitly
        supplied transformations — sampled ones come from the family's
        sampler, which each scenario's constraints must accept.
        """
        return self.family.admits(transformation)

    # ------------------------------------------------------------- queries
    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        """Instantiate ``count`` random queries over the spec's tables."""
        raise NotImplementedError

    # --------------------------------------------------------- expectation
    def expected_followup(self, query: ScenarioQuery, original: Any, transformation: AffineTransformation) -> Any:
        """The SDB2 result implied by the SDB1 result (default: identical)."""
        return original

    def results_match(self, expected: Any, actual: Any) -> bool:
        """Compare the expected against the observed SDB2 result."""
        return expected == actual

    # ----------------------------------------------------------- reporting
    def describe(self) -> str:
        return f"{self.name}: {self.title} [{self.family.value}]"
