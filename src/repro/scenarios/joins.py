"""Three-way join-chain scenario.

Clause-guided fuzzers (SQLaser, arXiv:2407.04294) find that bug yield grows
with query-shape diversity: longer FROM/JOIN chains drive the planner and
executor through code paths a two-table join never reaches (join reordering,
repeated index probes, intermediate result handling).  This scenario chains
three aliased table references with two topological predicates:

    SELECT COUNT(*) FROM ta AS a
      JOIN (SELECT id, g FROM tb ORDER BY id LIMIT <cap>) AS b
        ON <p1>(a.g, b.g)
      JOIN (SELECT id, g FROM tc ORDER BY id LIMIT <cap>) AS c
        ON <p2>(b.g, c.g)

Every DE-9IM predicate in the chain is affine-invariant, so the qualifying
triples — and hence the counts — must be identical across an AEI pair under
any invertible affine map.  Aliases make the chain well-formed even when the
generated database has fewer than three tables (true aliased self-joins are
themselves a path the two-table template never took: its repeated table
names collapsed to one binding).  The inner hops read derived tables capped
by a deterministic ``ORDER BY id LIMIT`` — row ids are stable across an AEI
pair, so the caps select the *same* rows on both sides and keep the
metamorphic relation exact while bounding the cubic blow-up of evaluating
exact DE-9IM matrices over derived-geometry triples; covering the full
pairwise volume stays the reference JOIN scenario's job.
"""

from __future__ import annotations

from repro.core.generator import DatabaseSpec
from repro.core.qir import (
    Column,
    Join,
    OrderItem,
    Select,
    SubquerySource,
    TableRef,
    count_query,
    predicate_call,
)
from repro.core.queries import invariant_predicates
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily


class JoinChainScenario(Scenario):
    name = "join-chain"
    title = "COUNT over a three-way join chain of topological predicates"
    family = TransformationFamily.GENERAL
    paper_anchor = "ROADMAP scenario axis; SQLaser (arXiv:2407.04294) clause diversity"

    #: rows each inner binding's derived table is capped to.
    hop_cap: int = 3

    def is_applicable(self, dialect) -> bool:
        return bool(invariant_predicates(dialect))

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        predicates = invariant_predicates(context.capabilities)
        tables = spec.table_names()
        queries = []
        for _ in range(count):
            table_a = context.rng.choice(tables)
            table_b = context.rng.choice(tables)
            table_c = context.rng.choice(tables)
            first = context.rng.choice(predicates)
            second = context.rng.choice(predicates)
            ir = count_query(
                (TableRef(table_a, alias="a"),),
                joins=(
                    Join(self._hop(table_b, "b"), predicate_call(first, "a", "b")),
                    Join(self._hop(table_c, "c"), predicate_call(second, "b", "c")),
                ),
            )
            queries.append(ScenarioQuery.from_ir(self.name, f"{first}+{second}", ir))
        return queries

    def _hop(self, table: str, alias: str) -> SubquerySource:
        """One capped derived-table hop: ``(SELECT id, g FROM t ORDER BY id LIMIT cap)``."""
        inner = Select(
            projection=(Column("id"), Column("g")),
            sources=(TableRef(table),),
            order_by=(OrderItem(Column("id")),),
            limit=self.hop_cap,
        )
        return SubquerySource(inner, alias)
