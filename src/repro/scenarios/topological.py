"""The reference scenario: the paper's topological JOIN template (Figure 5).

``SELECT COUNT(*) FROM a JOIN b ON <TopoRlt>`` — every DE-9IM relationship
is invariant under invertible affine maps (Proposition 3.3), so the two
counts must be equal.  This is the original Spatter oracle, ported onto the
scenario interface unchanged; the only rule that moved is the
distance-predicate exclusion, which is now stated here as part of the
scenario's admissibility (general affine maps do not preserve distances)
instead of as a skip flag inside the oracle.
"""

from __future__ import annotations

from repro.core.generator import DatabaseSpec
from repro.core.queries import TopologicalQuery, invariant_predicates
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily


class TopologicalJoinScenario(Scenario):
    name = "topological-join"
    title = "COUNT over a two-table join on a topological predicate"
    family = TransformationFamily.GENERAL
    paper_anchor = "Figure 5 'Results Validation'; Proposition 3.3"

    def is_applicable(self, dialect) -> bool:
        return bool(invariant_predicates(dialect))

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        predicates = invariant_predicates(context.capabilities)
        tables = spec.table_names()
        queries = []
        for _ in range(count):
            predicate = context.rng.choice(predicates)
            table_a = context.rng.choice(tables)
            table_b = context.rng.choice(tables)
            # A topological query embeds no literals, so the SDB2 plan is
            # the SDB1 plan unchanged.
            ir = TopologicalQuery(table_a, table_b, predicate).ir()
            queries.append(ScenarioQuery.from_ir(self.name, predicate, ir))
        return queries
