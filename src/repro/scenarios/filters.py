"""Single-table filter scenario: ``WHERE <predicate>(g, <literal>)``.

The affine-invariant query logics of Haesevoets & Kuijpers (arXiv:0810.5725)
cover queries that compare stored geometries against *constants*, provided
the constants are transformed alongside the data.  This scenario instantiates

    SELECT COUNT(*) FROM t WHERE <TopoRlt>(g, '<literal>'::geometry)

with a literal drawn from the generated database itself (maximising the
chance of non-trivial relationships); the follow-up query embeds the
literal's image under the same canonicalize-then-transform pipeline the
stored geometries go through, so the pair stays affine equivalent and the
two counts must agree.

Unlike the JOIN template this exercises the engine's single-table scan
path — including the constant-probe index filter of the paper's Listing 8 —
so index-side bugs that never show up in join plans become reachable.
"""

from __future__ import annotations

from repro.core.generator import DatabaseSpec
from repro.core.qir import (
    Column,
    FunctionCall,
    GeometryLiteral,
    Select,
    TableRef,
    count_query,
    rewrite_literals,
)
from repro.core.queries import invariant_predicates
from repro.scenarios.base import Scenario, ScenarioContext, ScenarioQuery, TransformationFamily


class AttributeFilterScenario(Scenario):
    name = "attribute-filter"
    title = "COUNT over a single-table filter against a transformed literal"
    family = TransformationFamily.GENERAL
    paper_anchor = "Section 7 (query extensions); Haesevoets & Kuijpers, arXiv:0810.5725"

    def is_applicable(self, dialect) -> bool:
        return bool(invariant_predicates(dialect))

    def build_queries(self, spec: DatabaseSpec, context: ScenarioContext, count: int) -> list[ScenarioQuery]:
        predicates = invariant_predicates(context.capabilities)
        tables = spec.table_names()
        literals = spec.all_wkts()
        queries = []
        for _ in range(count):
            predicate = context.rng.choice(predicates)
            table = context.rng.choice(tables)
            literal = context.rng.choice(literals)
            ir = self._ir(table, predicate, literal)
            # The SDB2 plan rewrites the embedded constant through the same
            # canonicalize-then-transform pipeline the stored rows take.
            followup_ir = rewrite_literals(ir, geometry=context.followup_wkt)
            queries.append(ScenarioQuery.from_ir(self.name, predicate, ir, followup_ir))
        return queries

    @staticmethod
    def _ir(table: str, predicate: str, literal_wkt: str) -> Select:
        condition = FunctionCall(
            predicate, (Column("g", table), GeometryLiteral(literal_wkt))
        )
        return count_query((TableRef(table),), where=condition)
