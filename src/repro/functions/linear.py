"""Line-based editing functions: merge, simplify, segmentize, snap, closest point.

These extend the derivative strategy's Table 1 line-based category.  All of
them keep coordinates rational (no square roots leak into output
coordinates), so geometries derived through them remain safe for the AEI
oracle's exact-arithmetic expectations.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from repro.errors import GeometryTypeError
from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    flatten,
)
from repro.geometry.primitives import (
    segment_point_squared_distance,
    squared_distance,
)

Numeric = Union[int, float, Fraction]


# ---------------------------------------------------------------------------
# Projections and closest points (exact).
# ---------------------------------------------------------------------------
def project_point_on_segment(p: Coordinate, a: Coordinate, b: Coordinate) -> Coordinate:
    """Closest point to ``p`` on the closed segment ``a``–``b`` (exact)."""
    if a == b:
        return a
    ab_x = b.x - a.x
    ab_y = b.y - a.y
    ap_x = p.x - a.x
    ap_y = p.y - a.y
    denom = ab_x * ab_x + ab_y * ab_y
    t = (ap_x * ab_x + ap_y * ab_y) / denom
    if t <= 0:
        return a
    if t >= 1:
        return b
    return Coordinate(a.x + t * ab_x, a.y + t * ab_y)


def _vertices_and_segments(geometry: Geometry) -> tuple[list[Coordinate], list[tuple[Coordinate, Coordinate]]]:
    """Vertices and segments of a geometry's linework (points count as vertices)."""
    vertices: list[Coordinate] = []
    segments: list[tuple[Coordinate, Coordinate]] = []
    for element in flatten(geometry):
        if element.is_empty:
            continue
        if isinstance(element, Point):
            vertices.append(element.coordinate)
        elif isinstance(element, LineString):
            vertices.extend(element.points)
            segments.extend(element.segments())
        elif isinstance(element, Polygon):
            for ring in element.rings():
                vertices.extend(ring)
                segments.extend(zip(ring, ring[1:]))
    return vertices, segments


def closest_pair(a: Geometry, b: Geometry) -> tuple[Coordinate, Coordinate] | None:
    """Exact closest pair of points ``(on a, on b)``, or None for EMPTY inputs.

    The minimum distance between two piecewise-linear sets is always attained
    at a vertex of one set and its projection onto a segment (or a vertex) of
    the other, unless the sets intersect — the intersection case is handled
    by the same candidate enumeration because a crossing point is the
    projection of no vertex but the candidate distance reaches zero only via
    the topological check below.
    """
    vertices_a, segments_a = _vertices_and_segments(a)
    vertices_b, segments_b = _vertices_and_segments(b)
    if not vertices_a or not vertices_b:
        return None

    best: tuple[Fraction, Coordinate, Coordinate] | None = None

    def consider(pa: Coordinate, pb: Coordinate) -> None:
        nonlocal best
        d = squared_distance(pa, pb)
        if best is None or d < best[0]:
            best = (d, pa, pb)

    # Crossing segments: the distance is zero at the crossing point.
    from repro.geometry.primitives import segment_intersection

    for sa in segments_a:
        for sb in segments_b:
            shared = segment_intersection(sa[0], sa[1], sb[0], sb[1])
            if shared:
                return shared[0], shared[0]

    for va in vertices_a:
        for vb in vertices_b:
            consider(va, vb)
        for sb in segments_b:
            consider(va, project_point_on_segment(va, sb[0], sb[1]))
    for vb in vertices_b:
        for sa in segments_a:
            consider(project_point_on_segment(vb, sa[0], sa[1]), vb)

    if best is None:
        return None
    return best[1], best[2]


def closest_point(a: Geometry, b: Geometry) -> Geometry:
    """The point on ``a`` closest to ``b`` (PostGIS ``ST_ClosestPoint``)."""
    pair = closest_pair(a, b)
    if pair is None:
        return Point.empty()
    return Point(pair[0])


def shortest_line(a: Geometry, b: Geometry) -> Geometry:
    """The shortest connecting LINESTRING between two geometries."""
    pair = closest_pair(a, b)
    if pair is None:
        return LineString.empty()
    start, end = pair
    # When the geometries touch the result is a zero-length line, which is
    # what PostGIS returns as well.
    return LineString([start, end])


def longest_line(a: Geometry, b: Geometry) -> Geometry:
    """The longest vertex-to-vertex LINESTRING between two geometries."""
    vertices_a, _ = _vertices_and_segments(a)
    vertices_b, _ = _vertices_and_segments(b)
    if not vertices_a or not vertices_b:
        return LineString.empty()
    best: tuple[Fraction, Coordinate, Coordinate] | None = None
    for va in vertices_a:
        for vb in vertices_b:
            d = squared_distance(va, vb)
            if best is None or d > best[0]:
                best = (d, va, vb)
    assert best is not None
    return LineString([best[1], best[2]])


# ---------------------------------------------------------------------------
# Line merging.
# ---------------------------------------------------------------------------
def line_merge(geometry: Geometry) -> Geometry:
    """Merge the linework of a (MULTI)LINESTRING into maximal linestrings.

    Chains are joined at nodes of degree exactly two, matching the behaviour
    of PostGIS ``ST_LineMerge``.  Non-linear inputs raise, EMPTY inputs
    return an EMPTY result.
    """
    lines = [
        element
        for element in flatten(geometry)
        if isinstance(element, LineString) and not element.is_empty
    ]
    if not isinstance(geometry, (LineString, MultiLineString, GeometryCollection)):
        raise GeometryTypeError("ST_LineMerge requires linear input")
    if not lines:
        return (
            geometry
            if isinstance(geometry, LineString)
            else MultiLineString.empty()
        )

    remaining = [list(line.points) for line in lines]
    # Degree of each endpoint over the whole collection.
    degree: dict[Coordinate, int] = {}
    for chain in remaining:
        for endpoint in (chain[0], chain[-1]):
            degree[endpoint] = degree.get(endpoint, 0) + 1

    merged: list[list[Coordinate]] = []
    while remaining:
        chain = remaining.pop()
        changed = True
        while changed:
            changed = False
            for index, other in enumerate(remaining):
                joined = _join_chains(chain, other, degree)
                if joined is not None:
                    chain = joined
                    remaining.pop(index)
                    changed = True
                    break
        merged.append(chain)

    if len(merged) == 1:
        return LineString(merged[0])
    return MultiLineString([LineString(chain) for chain in merged])


def _join_chains(
    chain: list[Coordinate], other: list[Coordinate], degree: dict[Coordinate, int]
) -> list[Coordinate] | None:
    """Join two chains sharing an endpoint of degree two, or return None."""
    def joinable(endpoint: Coordinate) -> bool:
        return degree.get(endpoint, 0) == 2

    if chain[-1] == other[0] and joinable(chain[-1]):
        return chain + other[1:]
    if chain[-1] == other[-1] and joinable(chain[-1]):
        return chain + list(reversed(other[:-1]))
    if chain[0] == other[-1] and joinable(chain[0]):
        return other + chain[1:]
    if chain[0] == other[0] and joinable(chain[0]):
        return list(reversed(other)) + chain[1:]
    return None


# ---------------------------------------------------------------------------
# Simplification and densification.
# ---------------------------------------------------------------------------
def simplify(geometry: Geometry, tolerance: Numeric) -> Geometry:
    """Douglas–Peucker simplification with an exact squared-distance test.

    Rings keep at least four coordinates so polygons stay structurally valid;
    if simplification would collapse a ring, the original ring is kept.
    """
    limit = Fraction(tolerance)
    if limit < 0:
        raise GeometryTypeError("ST_Simplify tolerance must be non-negative")
    squared_limit = limit * limit

    def simplify_line(points: list[Coordinate]) -> list[Coordinate]:
        if len(points) <= 2:
            return list(points)
        return _douglas_peucker(points, squared_limit)

    def simplify_ring(ring: list[Coordinate]) -> list[Coordinate]:
        simplified = simplify_line(ring)
        if len(simplified) < 4 or simplified[0] != simplified[-1]:
            return list(ring)
        return simplified

    if isinstance(geometry, Point) or geometry.is_empty:
        return geometry
    if isinstance(geometry, LineString):
        return LineString(simplify_line(geometry.points))
    if isinstance(geometry, Polygon):
        return Polygon(
            simplify_ring(geometry.exterior),
            [simplify_ring(hole) for hole in geometry.holes],
        )
    if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return type(geometry)([simplify(element, tolerance) for element in geometry.geoms])
    raise GeometryTypeError(f"cannot simplify {geometry.geom_type}")


def _douglas_peucker(points: list[Coordinate], squared_limit: Fraction) -> list[Coordinate]:
    keep = [False] * len(points)
    keep[0] = keep[-1] = True
    stack = [(0, len(points) - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        best_index = -1
        best_distance = squared_limit
        for index in range(start + 1, end):
            d = segment_point_squared_distance(points[index], points[start], points[end])
            if d > best_distance:
                best_distance = d
                best_index = index
        if best_index >= 0:
            keep[best_index] = True
            stack.append((start, best_index))
            stack.append((best_index, end))
    return [point for point, kept in zip(points, keep) if kept]


def segmentize(geometry: Geometry, max_length: Numeric) -> Geometry:
    """Insert vertices so no segment is longer than ``max_length``.

    Subdivision points are placed at equal rational fractions of each
    segment, so coordinates stay exact.
    """
    limit = Fraction(max_length)
    if limit <= 0:
        raise GeometryTypeError("ST_Segmentize max length must be positive")

    def densify(points: list[Coordinate]) -> list[Coordinate]:
        if len(points) < 2:
            return list(points)
        result = [points[0]]
        for a, b in zip(points, points[1:]):
            segment_length = math.sqrt(float(squared_distance(a, b)))
            pieces = max(1, math.ceil(segment_length / float(limit)))
            for step in range(1, pieces):
                t = Fraction(step, pieces)
                result.append(Coordinate(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)))
            result.append(b)
        return result

    if isinstance(geometry, Point) or geometry.is_empty:
        return geometry
    if isinstance(geometry, LineString):
        return LineString(densify(geometry.points))
    if isinstance(geometry, Polygon):
        return Polygon(densify(geometry.exterior), [densify(hole) for hole in geometry.holes])
    if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return type(geometry)([segmentize(element, max_length) for element in geometry.geoms])
    raise GeometryTypeError(f"cannot segmentize {geometry.geom_type}")


# ---------------------------------------------------------------------------
# Vertex editing.
# ---------------------------------------------------------------------------
def add_point(line: Geometry, point: Geometry, position: int = -1) -> Geometry:
    """Insert a POINT into a LINESTRING (PostGIS ``ST_AddPoint``).

    ``position`` is the 0-based index the new vertex takes; ``-1`` appends.
    """
    if not isinstance(line, LineString):
        raise GeometryTypeError("ST_AddPoint requires a LINESTRING")
    if not isinstance(point, Point) or point.is_empty:
        raise GeometryTypeError("ST_AddPoint requires a non-empty POINT")
    points = list(line.points)
    if position == -1 or position == len(points):
        points.append(point.coordinate)
    elif 0 <= position < len(points):
        points.insert(position, point.coordinate)
    else:
        raise GeometryTypeError("ST_AddPoint position out of range")
    return LineString(points)


def remove_point(line: Geometry, position: int) -> Geometry:
    """Remove the ``position``-th (0-based) vertex of a LINESTRING."""
    if not isinstance(line, LineString) or line.is_empty:
        raise GeometryTypeError("ST_RemovePoint requires a non-empty LINESTRING")
    points = list(line.points)
    if not 0 <= position < len(points):
        raise GeometryTypeError("ST_RemovePoint position out of range")
    if len(points) <= 2:
        raise GeometryTypeError("ST_RemovePoint cannot reduce a LINESTRING below two points")
    del points[position]
    return LineString(points)


def snap(geometry: Geometry, reference: Geometry, tolerance: Numeric) -> Geometry:
    """Snap vertices of ``geometry`` to nearby vertices of ``reference``.

    A vertex moves to the closest reference vertex within ``tolerance``
    (exclusive of ties, which keep the first-found vertex); everything else
    is untouched.  This mirrors the vertex-snapping half of PostGIS
    ``ST_Snap`` and is what the derivative strategy needs to create
    *touching* topologies on purpose.
    """
    limit = Fraction(tolerance)
    if limit < 0:
        raise GeometryTypeError("ST_Snap tolerance must be non-negative")
    squared_limit = limit * limit
    reference_vertices, _ = _vertices_and_segments(reference)
    if not reference_vertices:
        return geometry

    def snap_coordinate(coordinate: Coordinate) -> Coordinate:
        best: tuple[Fraction, Coordinate] | None = None
        for vertex in reference_vertices:
            d = squared_distance(coordinate, vertex)
            if d <= squared_limit and (best is None or d < best[0]):
                best = (d, vertex)
        return best[1] if best is not None else coordinate

    try:
        return geometry.transform(snap_coordinate)
    except GeometryTypeError:
        # Snapping may collapse a ring/line below its minimum vertex count.
        return geometry
