"""Spatial functions used by the SQL engine and the derivative strategy.

The paper's geometry-aware generator (Section 4.1, Table 1) derives new
geometries from existing ones by applying *editing functions* grouped into
line-based, polygon-based, multi-dimensional and generic categories.  This
package implements those functions plus the accessors, measures, linear
editing tools and affine helpers the SQL registry exposes as ``ST_*``
functions.
"""

from repro.functions.accessors import (
    end_point,
    exterior_ring,
    geometry_n,
    interior_ring_n,
    is_closed,
    is_ring,
    num_geometries,
    num_interior_rings,
    num_points,
    point_n,
    start_point,
    x_of,
    y_of,
)
from repro.functions.constructive import (
    boundary,
    centroid,
    collect,
    collection_extract,
    convex_hull,
    dump_rings,
    envelope,
    force_polygon_ccw,
    force_polygon_cw,
    make_envelope,
    polygonize,
    reverse,
    set_point,
)
from repro.functions.affine_ops import (
    affine_transform,
    rotate,
    scale,
    swap_xy,
    translate,
)
from repro.functions.metrics import (
    area,
    azimuth,
    length,
    num_coordinates,
    perimeter,
)
from repro.functions.linear import (
    add_point,
    closest_point,
    line_merge,
    longest_line,
    remove_point,
    segmentize,
    shortest_line,
    simplify,
    snap,
)

__all__ = [
    "boundary",
    "centroid",
    "collect",
    "collection_extract",
    "convex_hull",
    "dump_rings",
    "envelope",
    "force_polygon_ccw",
    "force_polygon_cw",
    "make_envelope",
    "polygonize",
    "reverse",
    "set_point",
    "geometry_n",
    "num_geometries",
    "num_points",
    "point_n",
    "x_of",
    "y_of",
    "exterior_ring",
    "interior_ring_n",
    "num_interior_rings",
    "start_point",
    "end_point",
    "is_closed",
    "is_ring",
    "affine_transform",
    "rotate",
    "scale",
    "swap_xy",
    "translate",
    "area",
    "azimuth",
    "length",
    "num_coordinates",
    "perimeter",
    "add_point",
    "closest_point",
    "line_merge",
    "longest_line",
    "remove_point",
    "segmentize",
    "shortest_line",
    "simplify",
    "snap",
]
