"""Geometry accessor functions (``ST_GeometryN``, ``ST_PointN``, ...).

These mirror the accessors the paper's derivative strategy relies on for its
multi-dimensional editing functions (Table 1): fetching the N-th element of a
MULTI or MIXED geometry, counting elements and points, and reading point
ordinates.  Indexing is 1-based, matching SQL conventions.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import GeometryTypeError
from repro.geometry.model import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    _MultiGeometry,
)


def num_geometries(geometry: Geometry) -> int:
    """Number of elements of a MULTI or MIXED geometry (1 for basic types).

    Empty geometries report zero, matching PostGIS ``ST_NumGeometries``.
    """
    if geometry.is_empty:
        return 0
    if isinstance(geometry, _MultiGeometry):
        return len(geometry.geoms)
    return 1


def geometry_n(geometry: Geometry, index: int) -> Geometry | None:
    """The ``index``-th (1-based) element of a MULTI or MIXED geometry.

    Basic geometries return themselves for index 1.  Out-of-range indexes
    return None (SQL NULL), matching PostGIS.
    """
    if isinstance(geometry, _MultiGeometry):
        if 1 <= index <= len(geometry.geoms):
            return geometry.geoms[index - 1]
        return None
    if index == 1 and not geometry.is_empty:
        return geometry
    return None


def num_points(geometry: Geometry) -> int | None:
    """Number of points of a LINESTRING (None for other types)."""
    if isinstance(geometry, LineString):
        return len(geometry.points)
    return None


def point_n(geometry: Geometry, index: int) -> Point | None:
    """The ``index``-th (1-based) point of a LINESTRING, or None."""
    if not isinstance(geometry, LineString):
        return None
    if 1 <= index <= len(geometry.points):
        return Point(geometry.points[index - 1])
    return None


def x_of(geometry: Geometry) -> Fraction | None:
    """X ordinate of a POINT (None for EMPTY or non-point geometries)."""
    if isinstance(geometry, Point) and not geometry.is_empty:
        return geometry.x
    return None


def y_of(geometry: Geometry) -> Fraction | None:
    """Y ordinate of a POINT (None for EMPTY or non-point geometries)."""
    if isinstance(geometry, Point) and not geometry.is_empty:
        return geometry.y
    return None


def exterior_ring(geometry: Geometry) -> Geometry | None:
    """The exterior ring of a POLYGON as a LINESTRING (PostGIS ``ST_ExteriorRing``).

    Non-polygon inputs yield None (SQL NULL); POLYGON EMPTY yields an empty
    LINESTRING.
    """
    from repro.geometry.model import Polygon

    if not isinstance(geometry, Polygon):
        return None
    if geometry.is_empty:
        return LineString.empty()
    return LineString(geometry.exterior)


def num_interior_rings(geometry: Geometry) -> int | None:
    """Number of holes of a POLYGON, or None for other types."""
    from repro.geometry.model import Polygon

    if not isinstance(geometry, Polygon):
        return None
    return len(geometry.holes)


def interior_ring_n(geometry: Geometry, index: int) -> Geometry | None:
    """The ``index``-th (1-based) hole of a POLYGON as a LINESTRING, or None."""
    from repro.geometry.model import Polygon

    if not isinstance(geometry, Polygon):
        return None
    if 1 <= index <= len(geometry.holes):
        return LineString(geometry.holes[index - 1])
    return None


def start_point(geometry: Geometry) -> Point | None:
    """First point of a LINESTRING, or None for other types and EMPTY."""
    if isinstance(geometry, LineString) and geometry.points:
        return Point(geometry.points[0])
    return None


def end_point(geometry: Geometry) -> Point | None:
    """Last point of a LINESTRING, or None for other types and EMPTY."""
    if isinstance(geometry, LineString) and geometry.points:
        return Point(geometry.points[-1])
    return None


def is_closed(geometry: Geometry) -> bool | None:
    """True if a (MULTI)LINESTRING starts and ends at the same point.

    EMPTY lines report False in PostGIS; non-linear inputs yield None.
    """
    if isinstance(geometry, LineString):
        return geometry.is_closed
    if isinstance(geometry, MultiLineString):
        return all(element.is_closed for element in geometry.geoms)
    return None


def is_ring(geometry: Geometry) -> bool | None:
    """True if a LINESTRING is closed and simple (no self-intersections)."""
    from repro.geometry.validity import is_simple_linestring

    if not isinstance(geometry, LineString):
        return None
    if geometry.is_empty or not geometry.is_closed:
        return False
    return is_simple_linestring(geometry)


def elements_of_type(geometry: Geometry, element_dimension: int) -> list[Geometry]:
    """All basic elements of the requested dimension, searched recursively."""
    from repro.geometry.model import flatten

    wanted = {0: Point, 1: LineString, 2: type(None)}
    result: list[Geometry] = []
    for element in flatten(geometry):
        if element.is_empty:
            continue
        if element_dimension == 0 and isinstance(element, Point):
            result.append(element)
        elif element_dimension == 1 and isinstance(element, LineString):
            result.append(element)
        elif element_dimension == 2 and element.dimension == 2:
            result.append(element)
    return result
