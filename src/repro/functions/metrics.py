"""Scalar measurement functions (``ST_Area``, ``ST_Length``, ``ST_Perimeter``...).

Areas are computed exactly with the shoelace formula on the rational
coordinates; lengths and perimeters require a square root per segment and are
therefore returned as floats, matching what real SDBMSs return.  The exact
squared quantities are exposed separately so callers that only need
comparisons (for example property tests asserting affine scaling behaviour)
can stay in rational arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.errors import GeometryTypeError
from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.primitives import ring_signed_area, squared_distance


def area(geometry: Geometry) -> Fraction:
    """Exact planar area of the polygonal parts of a geometry.

    Holes are subtracted from their polygon; points and lines contribute
    zero; collections sum the areas of their elements.  EMPTY geometries
    have zero area.
    """
    if geometry.is_empty:
        return Fraction(0)
    if isinstance(geometry, Polygon):
        total = abs(ring_signed_area(geometry.exterior))
        for hole in geometry.holes:
            total -= abs(ring_signed_area(hole))
        return total
    if isinstance(geometry, (MultiPolygon, GeometryCollection)):
        return sum((area(element) for element in geometry.geoms), Fraction(0))
    return Fraction(0)


def _segment_length(a: Coordinate, b: Coordinate) -> float:
    return math.sqrt(float(squared_distance(a, b)))


def length(geometry: Geometry) -> float:
    """Length of the linear parts of a geometry (0 for points and polygons).

    This matches PostGIS ``ST_Length``, which measures LINESTRING and
    MULTILINESTRING inputs only; polygon boundaries are measured by
    :func:`perimeter`.
    """
    if geometry.is_empty:
        return 0.0
    if isinstance(geometry, LineString):
        return sum(_segment_length(a, b) for a, b in geometry.segments())
    if isinstance(geometry, (MultiLineString, GeometryCollection)):
        return sum(length(element) for element in geometry.geoms)
    return 0.0


def perimeter(geometry: Geometry) -> float:
    """Total boundary length of the polygonal parts of a geometry."""
    if geometry.is_empty:
        return 0.0
    if isinstance(geometry, Polygon):
        total = 0.0
        for ring in geometry.rings():
            total += sum(_segment_length(a, b) for a, b in zip(ring, ring[1:]))
        return total
    if isinstance(geometry, (MultiPolygon, GeometryCollection)):
        return sum(perimeter(element) for element in geometry.geoms)
    return 0.0


def num_coordinates(geometry: Geometry) -> int:
    """Total number of coordinates in a geometry (PostGIS ``ST_NPoints``)."""
    return geometry.num_coordinates()


def azimuth(a: Geometry, b: Geometry) -> float | None:
    """Azimuth (radians clockwise from north) of the segment from ``a`` to ``b``.

    Both arguments must be non-empty POINTs; coincident points yield ``None``
    (SQL NULL), matching PostGIS ``ST_Azimuth``.
    """
    if not isinstance(a, Point) or not isinstance(b, Point):
        raise GeometryTypeError("ST_Azimuth requires two POINT inputs")
    if a.is_empty or b.is_empty:
        return None
    dx = float(b.x - a.x)
    dy = float(b.y - a.y)
    if dx == 0.0 and dy == 0.0:
        return None
    angle = math.atan2(dx, dy)
    if angle < 0:
        angle += 2 * math.pi
    return angle


def squared_length_terms(geometry: Geometry) -> list[Fraction]:
    """Exact squared segment lengths of the linear parts (helper for tests).

    Affine scaling by an integer factor ``s`` multiplies each term by
    ``s**2`` exactly, which property tests use to check the measurement
    functions without floating-point tolerance juggling.
    """
    terms: list[Fraction] = []
    if isinstance(geometry, LineString):
        terms.extend(squared_distance(a, b) for a, b in geometry.segments())
    elif isinstance(geometry, (MultiLineString, GeometryCollection)):
        for element in geometry.geoms:
            terms.extend(squared_length_terms(element))
    return terms


def point_count_by_type(geometry: Geometry) -> dict[str, int]:
    """Count coordinates grouped by basic element type (diagnostic helper)."""
    from repro.geometry.model import flatten

    counts: dict[str, int] = {}
    for element in flatten(geometry):
        counts[element.geom_type] = counts.get(element.geom_type, 0) + element.num_coordinates()
    return counts


def bounding_box_dimensions(geometry: Geometry) -> tuple[Fraction, Fraction] | None:
    """Width and height of the envelope, or None for EMPTY geometries."""
    box = geometry.envelope()
    if box is None:
        return None
    return box.max_x - box.min_x, box.max_y - box.min_y


def is_degenerate(geometry: Geometry) -> bool:
    """True for polygonal geometries whose area collapsed to zero.

    The random-shape strategy can build syntactically valid but degenerate
    polygons; the generator uses this check when classifying its output.
    """
    if geometry.is_empty:
        return False
    if isinstance(geometry, (Polygon, MultiPolygon)):
        return area(geometry) == 0
    if isinstance(geometry, GeometryCollection):
        return any(is_degenerate(element) for element in geometry.geoms)
    return False
