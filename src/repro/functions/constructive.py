"""Constructive and editing spatial functions (the paper's Table 1).

Each function takes geometries and returns a new geometry, never mutating
its input.  Functions that cannot be applied to a given input raise
:class:`~repro.errors.GeometryTypeError`; the derivative strategy catches
that and falls back to an EMPTY geometry, exactly as Algorithm 1 (lines
21–22) prescribes.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import GeometryTypeError
from repro.geometry.model import (
    Coordinate,
    Envelope,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    flatten,
)
from repro.geometry import primitives
from repro.topology.labels import LinesComponent


def boundary(geometry: Geometry) -> Geometry:
    """Topological boundary of a geometry (generic editing function).

    * POINT / MULTIPOINT → GEOMETRYCOLLECTION EMPTY (points have no boundary)
    * LINESTRING / MULTILINESTRING → MULTIPOINT of the mod-2 endpoints
    * POLYGON / MULTIPOLYGON → MULTILINESTRING of the rings
    * GEOMETRYCOLLECTION → collection of element boundaries
    """
    if geometry.is_empty:
        return GeometryCollection.empty()
    if isinstance(geometry, (Point, MultiPoint)):
        return GeometryCollection.empty()
    if isinstance(geometry, LineString):
        return _line_boundary([geometry])
    if isinstance(geometry, MultiLineString):
        return _line_boundary(list(geometry.geoms))
    if isinstance(geometry, Polygon):
        return MultiLineString([LineString(ring) for ring in geometry.rings()])
    if isinstance(geometry, MultiPolygon):
        rings = [
            LineString(ring)
            for polygon in geometry.geoms
            if not polygon.is_empty
            for ring in polygon.rings()
        ]
        return MultiLineString(rings)
    if isinstance(geometry, GeometryCollection):
        return GeometryCollection([boundary(g) for g in geometry.geoms if not g.is_empty])
    raise GeometryTypeError(f"cannot compute the boundary of {geometry.geom_type}")


def _line_boundary(elements: list[LineString]) -> Geometry:
    component = LinesComponent(elements)
    points = sorted(component.boundary_points, key=lambda c: (c.x, c.y))
    if not points:
        return MultiPoint.empty()
    return MultiPoint([Point(p) for p in points])


def convex_hull(geometry: Geometry) -> Geometry:
    """Convex hull (generic editing function).

    Degenerate inputs collapse gracefully: a single distinct coordinate
    yields a POINT, collinear coordinates yield a LINESTRING.
    """
    coords = list(geometry.coordinates())
    if not coords:
        return GeometryCollection.empty()
    hull = primitives.convex_hull(coords)
    if len(hull) == 1:
        return Point(hull[0])
    if len(hull) == 2:
        return LineString(hull)
    return Polygon(hull)


def envelope(geometry: Geometry) -> Geometry:
    """Axis-aligned bounding geometry (POINT, LINESTRING, or POLYGON)."""
    box = geometry.envelope()
    if box is None:
        return Point.empty()
    return make_envelope(box)


def make_envelope(box: Envelope) -> Geometry:
    """Build the geometry representing an :class:`Envelope`."""
    if box.min_x == box.max_x and box.min_y == box.max_y:
        return Point(Coordinate(box.min_x, box.min_y))
    if box.min_x == box.max_x or box.min_y == box.max_y:
        return LineString(
            [Coordinate(box.min_x, box.min_y), Coordinate(box.max_x, box.max_y)]
        )
    return Polygon(
        [
            Coordinate(box.min_x, box.min_y),
            Coordinate(box.max_x, box.min_y),
            Coordinate(box.max_x, box.max_y),
            Coordinate(box.min_x, box.max_y),
        ]
    )


def centroid(geometry: Geometry) -> Geometry:
    """Centroid of the coordinates (vertex average).

    Real SDBMSs weight by length/area; the vertex average is sufficient for
    the derivative strategy, which only needs *a* deterministic point related
    to the input shape.
    """
    point = primitives.centroid_of_points(list(geometry.coordinates()))
    if point is None:
        return Point.empty()
    return Point(point)


def reverse(geometry: Geometry) -> Geometry:
    """Reverse the coordinate order of every line and ring."""
    if isinstance(geometry, LineString):
        return geometry.reversed()
    if isinstance(geometry, Polygon):
        if geometry.is_empty:
            return Polygon.empty()
        return Polygon(
            list(reversed(geometry.exterior)),
            [list(reversed(hole)) for hole in geometry.holes],
        )
    if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return type(geometry)([reverse(g) for g in geometry.geoms])
    return geometry


def set_point(geometry: Geometry, index: int, point: Geometry) -> Geometry:
    """Replace the ``index``-th (0-based) vertex of a LINESTRING (line-based).

    Negative indexes count from the end, mirroring PostGIS ``ST_SetPoint``.
    """
    if not isinstance(geometry, LineString) or geometry.is_empty:
        raise GeometryTypeError("ST_SetPoint requires a non-empty LINESTRING")
    if not isinstance(point, Point) or point.is_empty:
        raise GeometryTypeError("ST_SetPoint requires a non-empty POINT replacement")
    points = list(geometry.points)
    if index < 0:
        index += len(points)
    if not 0 <= index < len(points):
        raise GeometryTypeError("ST_SetPoint index out of range")
    points[index] = point.coordinate
    return LineString(points)


def polygonize(geometry: Geometry) -> Geometry:
    """Form polygons from closed linework (line-based editing function).

    Closed LINESTRING elements (rings) become polygons; everything else is
    ignored.  The result is always a GEOMETRYCOLLECTION, matching PostGIS
    ``ST_Polygonize``.
    """
    polygons: list[Geometry] = []
    for element in flatten(geometry):
        if isinstance(element, LineString) and element.is_closed and len(set(element.points)) >= 3:
            if primitives.ring_signed_area(element.points) != 0:
                polygons.append(Polygon(element.points))
    return GeometryCollection(polygons)


def dump_rings(geometry: Geometry) -> Geometry:
    """Extract the rings of a POLYGON as polygons (polygon-based function)."""
    if not isinstance(geometry, Polygon):
        raise GeometryTypeError("ST_DumpRings requires a POLYGON")
    if geometry.is_empty:
        return GeometryCollection.empty()
    rings = [Polygon(ring) for ring in geometry.rings()]
    return GeometryCollection(rings)


def force_polygon_cw(geometry: Geometry) -> Geometry:
    """Force clockwise exterior rings and counter-clockwise holes."""
    return _force_orientation(geometry, exterior_clockwise=True)


def force_polygon_ccw(geometry: Geometry) -> Geometry:
    """Force counter-clockwise exterior rings and clockwise holes."""
    return _force_orientation(geometry, exterior_clockwise=False)


def _force_orientation(geometry: Geometry, exterior_clockwise: bool) -> Geometry:
    if isinstance(geometry, Polygon):
        if geometry.is_empty:
            return Polygon.empty()
        exterior = _orient_ring(geometry.exterior, clockwise=exterior_clockwise)
        holes = [_orient_ring(h, clockwise=not exterior_clockwise) for h in geometry.holes]
        return Polygon(exterior, holes)
    if isinstance(geometry, MultiPolygon):
        return MultiPolygon(
            [_force_orientation(p, exterior_clockwise) for p in geometry.geoms]
        )
    if isinstance(geometry, GeometryCollection):
        return GeometryCollection(
            [
                _force_orientation(g, exterior_clockwise)
                if g.dimension == 2
                else g
                for g in geometry.geoms
            ]
        )
    raise GeometryTypeError(
        "ST_ForcePolygonCW/CCW requires a POLYGON or MULTIPOLYGON input"
    )


def _orient_ring(ring: list[Coordinate], clockwise: bool) -> list[Coordinate]:
    is_clockwise = primitives.ring_is_clockwise(ring)
    if is_clockwise == clockwise:
        return list(ring)
    return list(reversed(ring))


def collection_extract(geometry: Geometry, dimension: int) -> Geometry:
    """Extract elements of one dimension from a MULTI or MIXED geometry.

    ``dimension`` follows the PostGIS convention: 1 = points, 2 = lines,
    3 = polygons.  The result is the corresponding MULTI geometry.
    """
    if dimension not in (1, 2, 3):
        raise GeometryTypeError("ST_CollectionExtract dimension must be 1, 2 or 3")
    wanted_dimension = dimension - 1
    elements = [
        element
        for element in flatten(geometry)
        if not element.is_empty and element.dimension == wanted_dimension
    ]
    if wanted_dimension == 0:
        return MultiPoint(elements)
    if wanted_dimension == 1:
        return MultiLineString(elements)
    return MultiPolygon(elements)


def collect(geometries: list[Geometry]) -> Geometry:
    """Combine geometries into a MULTI geometry or GEOMETRYCOLLECTION."""
    non_empty = [g for g in geometries if g is not None]
    if not non_empty:
        return GeometryCollection.empty()
    types = {type(g) for g in non_empty}
    if types == {Point}:
        return MultiPoint(non_empty)
    if types == {LineString}:
        return MultiLineString(non_empty)
    if types == {Polygon}:
        return MultiPolygon(non_empty)
    return GeometryCollection(non_empty)
