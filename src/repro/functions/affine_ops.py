"""Affine operations on geometries (``ST_Affine``, ``ST_SwapXY``, ...).

These back two distinct users:

* the SQL registry, which exposes them as spatial functions (the paper's
  Listing 4 uses ``ST_SwapXY``), and
* Spatter's AEI construction (:mod:`repro.core.affine`), which applies a
  random integer mapping matrix to every geometry in the database.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Union

from repro.geometry.model import Coordinate, Geometry

Numeric = Union[int, float, Fraction]


def affine_transform(
    geometry: Geometry,
    a: Numeric,
    b: Numeric,
    d: Numeric,
    e: Numeric,
    x_offset: Numeric = 0,
    y_offset: Numeric = 0,
) -> Geometry:
    """Apply the 2D affine map ``(x, y) -> (a x + b y + xoff, d x + e y + yoff)``.

    Parameter names follow PostGIS ``ST_Affine(geom, a, b, d, e, xoff, yoff)``.
    """
    a, b, d, e = Fraction(a), Fraction(b), Fraction(d), Fraction(e)
    x_offset, y_offset = Fraction(x_offset), Fraction(y_offset)

    def mapper(coordinate: Coordinate) -> Coordinate:
        return Coordinate(
            a * coordinate.x + b * coordinate.y + x_offset,
            d * coordinate.x + e * coordinate.y + y_offset,
        )

    return geometry.transform(mapper)


def apply_matrix(geometry: Geometry, matrix: Sequence[Sequence[Numeric]]) -> Geometry:
    """Apply a 3×3 homogeneous mapping matrix (the paper's Equation 4)."""
    rows = [list(row) for row in matrix]
    if len(rows) != 3 or any(len(row) != 3 for row in rows):
        raise ValueError("a homogeneous 2D mapping matrix must be 3x3")
    return affine_transform(
        geometry,
        rows[0][0],
        rows[0][1],
        rows[1][0],
        rows[1][1],
        rows[0][2],
        rows[1][2],
    )


def translate(geometry: Geometry, dx: Numeric, dy: Numeric) -> Geometry:
    """Translate a geometry by (dx, dy)."""
    return affine_transform(geometry, 1, 0, 0, 1, dx, dy)


def scale(geometry: Geometry, x_factor: Numeric, y_factor: Numeric) -> Geometry:
    """Scale a geometry about the origin."""
    return affine_transform(geometry, x_factor, 0, 0, y_factor)


def rotate_quarter_turns(geometry: Geometry, quarter_turns: int) -> Geometry:
    """Rotate about the origin by multiples of 90 degrees, exactly."""
    quarter_turns %= 4
    cos_sin = {0: (1, 0), 1: (0, 1), 2: (-1, 0), 3: (0, -1)}[quarter_turns]
    cos_value, sin_value = cos_sin
    return affine_transform(geometry, cos_value, -sin_value, sin_value, cos_value)


def rotate(geometry: Geometry, cos_value: Numeric, sin_value: Numeric) -> Geometry:
    """Rotate about the origin given exact cosine/sine values.

    The caller supplies cos/sin as rationals (for example from a Pythagorean
    triple such as 3/5, 4/5) so the transformation stays exact; Spatter never
    introduces irrational rotation angles, in line with the paper's decision
    to avoid floating-point matrices (Section 4.2).
    """
    return affine_transform(geometry, cos_value, -Fraction(sin_value), sin_value, cos_value)


def swap_xy(geometry: Geometry) -> Geometry:
    """Swap the X and Y ordinates of every coordinate (``ST_SwapXY``)."""

    def mapper(coordinate: Coordinate) -> Coordinate:
        return Coordinate(coordinate.y, coordinate.x)

    return geometry.transform(mapper)
