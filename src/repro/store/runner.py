"""Store-backed campaign drivers: run, checkpoint every round, resume.

The classic drivers (:mod:`repro.core.parallel`) stay storage-free; this
module wraps them with the persistence protocol of ``docs/SERVICE.md``:

* :func:`run_store_campaign` — register a campaign row, run it through the
  parallel orchestrator with every shard bound to the store, and stamp the
  final merged result;
* :func:`run_store_shard` — the per-worker body the orchestrator invokes
  (via :func:`repro.core.parallel._run_shard`) when a
  :class:`~repro.store.findings.StoreBinding` rides the payload: restore
  the shard's checkpoint when resuming, then record findings + trace
  events + the resume cursor in **one transaction per round**, so a kill
  at any instant leaves the store at a consistent round boundary;
* :func:`resume_store_campaign` — rebuild the config from the stored
  snapshot, compute each shard's remaining budget from its cursor, and
  finish the run.

Determinism: a resumed shard reconstructs round RNGs purely from
``(seed, shard_index, shard_count, rounds_completed)``
(:func:`repro.core.campaign.round_rng`), restores its deduplicator and
bandit state from the checkpoint, and therefore replays the *identical*
remaining finding stream an uninterrupted run would have produced — the
equivalence suite (``tests/integration/test_checkpoint_resume.py``) kills
a live run with SIGKILL and proves the merged streams byte-identical.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import asdict

from repro.core.campaign import CampaignConfig, CampaignResult, TestingCampaign
from repro.store.checkpoint import CheckpointState, accumulate_shard_result
from repro.store.findings import FindingsStore, StoreBinding
from repro.store.serialize import (
    crash_record,
    discrepancy_record,
    divergence_record,
    jsonable,
    oracle_finding_record,
    result_to_json,
)

#: result fields holding raw finding objects, with their projections —
#: the order here fixes the per-round recording order.
_FINDING_FIELDS = (
    ("discrepancies", discrepancy_record),
    ("oracle_findings", oracle_finding_record),
    ("divergences", divergence_record),
    ("crashes", crash_record),
)


def config_from_json(snapshot: dict) -> CampaignConfig:
    """Rebuild a :class:`CampaignConfig` from its stored JSON snapshot.

    JSON has no tuples, so the sequence-typed fields come back as lists;
    unknown keys (from a newer writer) are dropped rather than fatal.
    """
    known = {field.name for field in CampaignConfig.__dataclass_fields__.values()}
    kwargs = {key: value for key, value in snapshot.items() if key in known}
    for key in ("bug_ids", "scenarios", "oracles"):
        if kwargs.get(key) is not None:
            kwargs[key] = tuple(kwargs[key])
    return CampaignConfig(**kwargs)


class ShardRecorder:
    """Per-shard persistence: findings, trace events, checkpoint — atomically.

    Bound to one live :class:`TestingCampaign` in one worker process.  The
    campaign's ``round_hook`` lands here after every completed round; the
    recorder diff-scans the result's finding lists (they only grow), writes
    the new projections, the buffered trace events, the refreshed arm
    statistics and the resume checkpoint in a single ``BEGIN IMMEDIATE``
    transaction, then forgets the buffered events.  A SIGKILL between
    transactions loses at most the in-flight round — which resume replays
    from its cursor.
    """

    def __init__(
        self,
        store: FindingsStore,
        binding: StoreBinding,
        campaign: TestingCampaign,
        partial: CampaignResult | None = None,
        base_elapsed: float = 0.0,
    ):
        self.store = store
        self.binding = binding
        self.campaign = campaign
        self.partial = partial
        self.base_elapsed = base_elapsed
        #: bug ids already detected before this process ran (their
        #: first-detection instants are on the pre-interruption clock).
        self.prior_detections = (
            dict(campaign.deduplicator.result.first_detection_seconds)
        )
        # diff-scan counts over the *fresh* run's finding lists; the
        # partial's findings were recorded by the interrupted run's own
        # transactions and never re-recorded here.
        self._recorded = {field: 0 for field, _ in _FINDING_FIELDS}
        self._pending_events: list[dict] = []
        self._started = time.perf_counter()

    # ------------------------------------------------------------------ sinks
    def trace_sink(self, record: dict) -> None:
        """Buffer one trace event for the next per-round flush."""
        self._pending_events.append(record)

    def _new_records(self, result: CampaignResult) -> list[dict]:
        """Projections of findings appended since the last flush."""
        records: list[dict] = []
        for field, project in _FINDING_FIELDS:
            items = getattr(result, field)
            records.extend(project(item) for item in items[self._recorded[field] :])
            self._recorded[field] = len(items)
        return records

    def _checkpoint_state(self, result: CampaignResult) -> CheckpointState:
        cumulative = accumulate_shard_result(self.partial, result)
        return CheckpointState(
            seed=self.campaign.config.seed,
            shard_index=self.campaign.shard_index,
            shard_count=self.campaign.shard_count,
            rounds_completed=self.campaign.rounds_completed,
            elapsed_seconds=self.base_elapsed + (time.perf_counter() - self._started),
            result=cumulative,
            dedup=self.campaign.deduplicator.result,
            scheduler=self.campaign.scheduler,
        )

    def _flush(self, result: CampaignResult, done: bool) -> None:
        state = self._checkpoint_state(result)
        records = self._new_records(result)
        with self.store.transaction():
            for record in records:
                self.store.record_finding(
                    self.binding.campaign_id, record, self.campaign.shard_index
                )
            if self._pending_events:
                self.store.record_trace_events(self.binding.campaign_id, self._pending_events)
            if self.campaign.scheduler is not None:
                self.store.save_arm_stats(
                    self.binding.campaign_id,
                    self.campaign.shard_index,
                    self.campaign.scheduler.stats_dict(),
                )
            self.store.save_checkpoint(
                self.binding.campaign_id,
                self.campaign.shard_index,
                self.campaign.shard_count,
                self.campaign.config.seed,
                self.campaign.rounds_completed,
                state.elapsed_seconds,
                state.to_blob(),
                done=done,
            )
        self._pending_events = []

    # ------------------------------------------------------------------ hooks
    def on_round(self, campaign: TestingCampaign, result: CampaignResult) -> None:
        self._flush(result, done=False)

    def finalize(self, fresh: CampaignResult) -> CampaignResult:
        """Fold the partial into the finished run and seal the shard.

        The returned result is the shard's *cumulative* outcome: counters
        and findings of every round ever run for this shard, unique-bug
        fields from the restored deduplicator (already cumulative), new
        first-detection instants rebased onto the shard's accumulated
        clock, and cumulative wall-clock time.
        """
        cumulative = accumulate_shard_result(self.partial, fresh)
        if self.base_elapsed:
            detections = {
                bug_id: (
                    seconds
                    if bug_id in self.prior_detections
                    else seconds + self.base_elapsed
                )
                for bug_id, seconds in fresh.first_detection_seconds.items()
            }
            cumulative.first_detection_seconds = detections
            ordered = sorted(detections.values())
            cumulative.unique_bug_timeline = [
                (seconds, index + 1) for index, seconds in enumerate(ordered)
            ]
        cumulative.total_seconds = self.base_elapsed + fresh.total_seconds
        self._flush(fresh, done=True)
        return cumulative


def run_store_shard(
    config: CampaignConfig,
    shard_index: int,
    shard_count: int,
    rounds: int | None,
    duration_seconds: float | None,
    binding: StoreBinding,
    resume: bool,
) -> CampaignResult:
    """One store-bound shard, in whichever process the pool placed it."""
    store = FindingsStore(binding.path)
    try:
        campaign = TestingCampaign(config, shard_index=shard_index, shard_count=shard_count)
        partial: CampaignResult | None = None
        base_elapsed = 0.0
        if resume:
            row = store.load_checkpoint(binding.campaign_id, shard_index)
            if row is not None:
                state = CheckpointState.from_blob(row["state"])
                if state.shard_count != shard_count or state.seed != config.seed:
                    raise ValueError(
                        f"checkpoint for shard {shard_index} was written by a "
                        f"(seed={state.seed}, shards={state.shard_count}) run; "
                        f"resuming with (seed={config.seed}, shards={shard_count}) "
                        "would break the round-stream determinism contract"
                    )
                campaign.rounds_completed = state.rounds_completed
                campaign.deduplicator.result = state.dedup
                if state.scheduler is not None:
                    campaign.scheduler = state.scheduler
                partial = state.result
                base_elapsed = state.elapsed_seconds
        elif binding.preseed:
            store.preseed_deduplicator(campaign.deduplicator)
        recorder = ShardRecorder(store, binding, campaign, partial, base_elapsed)
        campaign.round_hook = recorder.on_round
        campaign.trace_sink = recorder.trace_sink
        fresh = campaign.run(rounds=rounds, duration_seconds=duration_seconds)
        return recorder.finalize(fresh)
    finally:
        store.close()


def new_campaign_id() -> str:
    return uuid.uuid4().hex[:12]


def run_store_campaign(
    store_path: str,
    config: CampaignConfig,
    rounds: int | None = None,
    duration_seconds: float | None = None,
    campaign_id: str | None = None,
    preseed: bool = False,
    register: bool = True,
) -> tuple[str, CampaignResult]:
    """Register and run one campaign against a persistent store.

    Returns ``(campaign_id, merged result)``.  The campaign row is created
    up front (status ``running``) so a kill mid-run leaves a resumable
    record; on normal completion the status flips to ``completed`` with the
    merged result JSON attached, and on an orchestrator error to
    ``failed`` with the error message.  ``register=False`` skips the row
    creation — the HTTP control plane registers the row synchronously at
    submission time (so a GET racing the background worker cannot 404) and
    hands the id here.
    """
    from repro.core.parallel import ParallelCampaign

    if rounds is None and duration_seconds is None:
        rounds = 5
    campaign_id = campaign_id or new_campaign_id()
    if register:
        with FindingsStore(store_path) as store:
            store.create_campaign(
                campaign_id,
                jsonable(asdict(config)),
                config.seed,
                target_rounds=rounds,
                target_duration=duration_seconds,
            )
    # the orchestrator's own connection is closed before any worker forks:
    # sqlite handles must never be shared across the process boundary.
    binding = StoreBinding(path=store_path, campaign_id=campaign_id, preseed=preseed)
    try:
        merged = ParallelCampaign(config, store=binding).run(
            rounds=rounds, duration_seconds=duration_seconds
        )
    except BaseException as error:
        with FindingsStore(store_path) as store:
            store.set_campaign_status(campaign_id, "failed", error=repr(error))
        raise
    with FindingsStore(store_path) as store:
        store.set_campaign_status(campaign_id, "completed", result_json=result_to_json(merged))
    return campaign_id, merged


def resume_store_campaign(
    store_path: str,
    campaign_id: str,
    rounds: int | None = None,
    duration_seconds: float | None = None,
) -> tuple[str, CampaignResult]:
    """Resume an interrupted campaign from its per-shard cursors.

    The config is rebuilt from the stored snapshot — the caller names only
    the campaign.  Budget: an explicit ``rounds``/``duration_seconds``
    overrides (and re-stamps) the stored target; otherwise a round-target
    campaign runs each shard's *remaining* rounds (total target minus its
    cursor), and a duration-target campaign grants every unfinished shard
    the stored wall-clock budget afresh (elapsed time under SIGKILL is
    unknowable, so the budget restarts rather than guesses).
    """
    from repro.core.parallel import ParallelCampaign

    with FindingsStore(store_path) as store:
        row = store.get_campaign(campaign_id)
        if row is None:
            raise ValueError(f"no campaign {campaign_id!r} in store {store_path!r}")
        if row["status"] == "completed":
            raise ValueError(
                f"campaign {campaign_id!r} already completed; submit a new campaign "
                "to run further rounds"
            )
        config = config_from_json(row["config"])
        target_rounds = rounds if rounds is not None else row["target_rounds"]
        target_duration = (
            duration_seconds if duration_seconds is not None else row["target_duration"]
        )
        if rounds is not None or duration_seconds is not None:
            store.set_campaign_targets(campaign_id, target_rounds, target_duration)
        cursors = {
            checkpoint["shard_index"]: checkpoint["rounds_completed"]
            for checkpoint in store.campaign_checkpoints(campaign_id)
        }
        store.set_campaign_status(campaign_id, "running")
    binding = StoreBinding(path=store_path, campaign_id=campaign_id)
    orchestrator = ParallelCampaign(
        config, store=binding, resume_cursors=cursors
    )
    run_rounds = target_rounds
    run_duration = target_duration if target_rounds is None else None
    try:
        merged = orchestrator.run(rounds=run_rounds, duration_seconds=run_duration)
    except BaseException as error:
        with FindingsStore(store_path) as store:
            store.set_campaign_status(campaign_id, "failed", error=repr(error))
        raise
    with FindingsStore(store_path) as store:
        store.set_campaign_status(campaign_id, "completed", result_json=result_to_json(merged))
    return campaign_id, merged
