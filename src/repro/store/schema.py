"""The persistent store's relational schema, versioned via ``user_version``.

Six tables on stdlib ``sqlite3``:

* ``campaigns`` — one row per submitted campaign: the full config snapshot
  as JSON (what ``--resume`` rebuilds the run from), the seed and budget
  targets, a status machine (``running → completed | failed``, with
  ``interrupted`` for acknowledged kills), and the final merged result
  JSON once the run completes.
* ``findings`` — the *globally deduplicated* bug corpus: one row per unique
  dedup signature ever observed, UNIQUE-indexed on the signature so
  cross-run novelty is a single ``INSERT OR IGNORE`` (the LAVA corpus
  pattern).  The row remembers which campaign first produced it and the
  full JSON projection of that first sighting.
* ``sightings`` — every observation, novel or not, keyed to its campaign
  and shard: what ``GET /campaigns/{id}/findings`` lists, and the
  denominator of the global dedup statistics.
* ``arm_stats`` — per-(campaign, shard, arm) scheduler counters; readers
  merge across shards by summation exactly like
  :func:`repro.core.scheduler.merge_scheduler_stats`.
* ``trace_events`` — the ingested :mod:`repro.core.trace` event stream (one
  JSON payload per event), the feed of the service's long-poll progress
  endpoint.
* ``checkpoints`` — one row per (campaign, shard): the resume cursor
  columns ``(seed, shard_index, shard_count, rounds_completed)`` in the
  clear for inspection, plus the pickled :class:`CheckpointState` blob the
  resumed worker rehydrates.

Migrations append to ``MIGRATIONS``; ``apply_schema`` runs every step above
the database's current ``PRAGMA user_version`` and stamps the new version,
so older store files upgrade in place.
"""

from __future__ import annotations

import sqlite3

#: schema steps, applied in order; index i migrates user_version i -> i+1.
MIGRATIONS: tuple[str, ...] = (
    """
    CREATE TABLE campaigns (
        id            TEXT PRIMARY KEY,
        config_json   TEXT NOT NULL,
        seed          INTEGER NOT NULL,
        status        TEXT NOT NULL DEFAULT 'running',
        target_rounds INTEGER,
        target_duration REAL,
        result_json   TEXT,
        error         TEXT,
        created_at    TEXT NOT NULL,
        updated_at    TEXT NOT NULL
    );

    CREATE TABLE findings (
        id            INTEGER PRIMARY KEY AUTOINCREMENT,
        signature     TEXT NOT NULL,
        campaign_id   TEXT NOT NULL REFERENCES campaigns(id),
        kind          TEXT NOT NULL,
        scenario      TEXT,
        oracle        TEXT,
        label         TEXT,
        bug_ids_json  TEXT NOT NULL DEFAULT '[]',
        payload_json  TEXT NOT NULL,
        created_at    TEXT NOT NULL
    );
    CREATE UNIQUE INDEX findings_signature ON findings(signature);
    CREATE INDEX findings_scenario ON findings(scenario);
    CREATE INDEX findings_oracle ON findings(oracle);
    CREATE INDEX findings_campaign ON findings(campaign_id);

    CREATE TABLE sightings (
        id            INTEGER PRIMARY KEY AUTOINCREMENT,
        campaign_id   TEXT NOT NULL REFERENCES campaigns(id),
        shard_index   INTEGER NOT NULL DEFAULT 0,
        signature     TEXT NOT NULL,
        kind          TEXT NOT NULL,
        novel         INTEGER NOT NULL,
        created_at    TEXT NOT NULL
    );
    CREATE INDEX sightings_campaign ON sightings(campaign_id);
    CREATE INDEX sightings_signature ON sightings(signature);

    CREATE TABLE arm_stats (
        campaign_id      TEXT NOT NULL REFERENCES campaigns(id),
        shard_index      INTEGER NOT NULL,
        arm              TEXT NOT NULL,
        pulls            INTEGER NOT NULL DEFAULT 0,
        queries          INTEGER NOT NULL DEFAULT 0,
        novel_signatures INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (campaign_id, shard_index, arm)
    );

    CREATE TABLE trace_events (
        id            INTEGER PRIMARY KEY AUTOINCREMENT,
        campaign_id   TEXT NOT NULL REFERENCES campaigns(id),
        shard         INTEGER NOT NULL DEFAULT 0,
        event         TEXT NOT NULL,
        payload_json  TEXT NOT NULL,
        created_at    TEXT NOT NULL
    );
    CREATE INDEX trace_events_campaign ON trace_events(campaign_id, id);

    CREATE TABLE checkpoints (
        campaign_id      TEXT NOT NULL REFERENCES campaigns(id),
        shard_index      INTEGER NOT NULL,
        shard_count      INTEGER NOT NULL,
        seed             INTEGER NOT NULL,
        rounds_completed INTEGER NOT NULL,
        elapsed_seconds  REAL NOT NULL DEFAULT 0.0,
        done             INTEGER NOT NULL DEFAULT 0,
        state            BLOB NOT NULL,
        updated_at       TEXT NOT NULL,
        PRIMARY KEY (campaign_id, shard_index)
    );
    """,
)

#: the user_version a fully-migrated store reports.
SCHEMA_VERSION = len(MIGRATIONS)


def apply_schema(connection: sqlite3.Connection) -> None:
    """Bring ``connection``'s database up to ``SCHEMA_VERSION`` in place."""
    version = connection.execute("PRAGMA user_version").fetchone()[0]
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"store schema version {version} is newer than this build "
            f"supports ({SCHEMA_VERSION}); refusing to open"
        )
    for step in MIGRATIONS[version:]:
        connection.executescript(step)
        version += 1
        connection.execute(f"PRAGMA user_version = {version}")
    connection.commit()
