"""``FindingsStore``: the sqlite3-backed persistent campaign/findings store.

One store file holds the cross-run memory of every campaign pointed at it:
submitted configs, the globally-deduplicated findings corpus, per-campaign
sightings, scheduler arm statistics, the ingested trace event stream, and
per-shard resume checkpoints (schema: :mod:`repro.store.schema`,
semantics: ``docs/SERVICE.md``).

Concurrency model — many processes, one file:

* every process/thread opens its **own** ``FindingsStore`` (sqlite3
  connections must not cross fork or thread boundaries here);
* the database runs in WAL mode, so readers never block writers;
* writers serialize through short explicit transactions —
  :meth:`record_finding` wraps its novelty check in ``BEGIN IMMEDIATE`` so
  "was this signature globally novel?" is answered atomically across
  concurrently-writing shards — with a generous ``busy_timeout`` instead of
  ``database is locked`` escapes (the two-process concurrency test pins
  exactly this down).
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Iterable

from repro.store.schema import apply_schema


def _now() -> str:
    """UTC wall-clock timestamp for bookkeeping columns (never part of any
    determinism contract)."""
    return datetime.now(timezone.utc).isoformat()


@dataclass(frozen=True)
class StoreBinding:
    """A picklable pointer to one campaign in one store file.

    What the parallel orchestrator ships across the process boundary: the
    worker opens its own connection from ``path`` (live sqlite handles never
    pickle or survive a fork).  ``preseed`` asks the shard to seed its
    deduplicator's signature space from store history before running — the
    bridge that steers the bandit scheduler away from historically-covered
    arms.
    """

    path: str
    campaign_id: str
    preseed: bool = False


class FindingsStore:
    """Handle on one persistent store file (create-or-open)."""

    def __init__(self, path: str, busy_timeout_seconds: float = 30.0):
        self.path = path
        # isolation_level=None: autocommit with explicit BEGIN where
        # atomicity spans statements — sqlite3's implicit transaction
        # management would hold locks longer than the store needs.
        self.connection = sqlite3.connect(
            path, timeout=busy_timeout_seconds, isolation_level=None
        )
        self.connection.row_factory = sqlite3.Row
        self.connection.execute("PRAGMA journal_mode=WAL")
        self.connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}")
        self.connection.execute("PRAGMA synchronous=NORMAL")
        apply_schema(self.connection)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "FindingsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def transaction(self):
        """``BEGIN IMMEDIATE`` … ``COMMIT`` (rollback on error).

        Immediate mode takes the write lock up front, so a transaction that
        interleaves reads and writes (the per-round checkpoint batch) cannot
        deadlock against another shard upgrading a read lock; contention
        waits on ``busy_timeout`` instead of raising.  Re-entrant use from
        :meth:`record_finding` inside a caller's transaction is handled by
        nesting checks.
        """
        if self.connection.in_transaction:
            yield  # already inside an explicit transaction: join it
            return
        self.connection.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self.connection.execute("ROLLBACK")
            raise
        self.connection.execute("COMMIT")

    # -------------------------------------------------------------- campaigns
    def create_campaign(
        self,
        campaign_id: str,
        config_json: dict,
        seed: int,
        target_rounds: int | None = None,
        target_duration: float | None = None,
        status: str = "running",
    ) -> str:
        with self.transaction():
            self.connection.execute(
                "INSERT INTO campaigns (id, config_json, seed, status, target_rounds,"
                " target_duration, created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    json.dumps(config_json, sort_keys=True),
                    seed,
                    status,
                    target_rounds,
                    target_duration,
                    _now(),
                    _now(),
                ),
            )
        return campaign_id

    def get_campaign(self, campaign_id: str) -> dict | None:
        row = self.connection.execute(
            "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            return None
        campaign = dict(row)
        campaign["config"] = json.loads(campaign.pop("config_json"))
        result_json = campaign.pop("result_json")
        campaign["result"] = json.loads(result_json) if result_json else None
        return campaign

    def list_campaigns(self) -> list[dict]:
        rows = self.connection.execute(
            "SELECT id, seed, status, target_rounds, target_duration, created_at,"
            " updated_at FROM campaigns ORDER BY created_at, id"
        ).fetchall()
        return [dict(row) for row in rows]

    def set_campaign_status(
        self,
        campaign_id: str,
        status: str,
        result_json: dict | None = None,
        error: str | None = None,
    ) -> None:
        with self.transaction():
            self.connection.execute(
                "UPDATE campaigns SET status = ?, result_json = COALESCE(?, result_json),"
                " error = ?, updated_at = ? WHERE id = ?",
                (
                    status,
                    json.dumps(result_json, sort_keys=True) if result_json is not None else None,
                    error,
                    _now(),
                    campaign_id,
                ),
            )

    def set_campaign_targets(
        self, campaign_id: str, target_rounds: int | None, target_duration: float | None
    ) -> None:
        """Re-point a campaign's budget targets (a resume with an explicit
        new budget records what the merged result now corresponds to)."""
        with self.transaction():
            self.connection.execute(
                "UPDATE campaigns SET target_rounds = ?, target_duration = ?,"
                " updated_at = ? WHERE id = ?",
                (target_rounds, target_duration, _now(), campaign_id),
            )

    # --------------------------------------------------------------- findings
    def record_finding(
        self, campaign_id: str, record: dict, shard_index: int = 0
    ) -> bool:
        """Persist one finding observation; returns *global* novelty.

        ``record`` is a projection from :mod:`repro.store.serialize` (must
        carry ``signature`` and ``kind``).  The corpus insert is one
        ``INSERT OR IGNORE`` against the UNIQUE signature index; the
        sighting row is written either way, stamped with the novelty
        verdict, so a campaign can later report how many of its findings
        were new to the whole store ("a second submission of the same
        config reports zero globally-novel findings").
        """
        signature = record["signature"]
        with self.transaction():
            cursor = self.connection.execute(
                "INSERT OR IGNORE INTO findings (signature, campaign_id, kind, scenario,"
                " oracle, label, bug_ids_json, payload_json, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    signature,
                    campaign_id,
                    record.get("kind", "finding"),
                    record.get("scenario"),
                    record.get("oracle"),
                    record.get("label"),
                    json.dumps(record.get("bug_ids", []), sort_keys=True),
                    json.dumps(record, sort_keys=True),
                    _now(),
                ),
            )
            novel = cursor.rowcount == 1
            self.connection.execute(
                "INSERT INTO sightings (campaign_id, shard_index, signature, kind,"
                " novel, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    shard_index,
                    signature,
                    record.get("kind", "finding"),
                    1 if novel else 0,
                    _now(),
                ),
            )
        return novel

    def campaign_findings(self, campaign_id: str) -> list[dict]:
        """Every finding the campaign observed (novel or not), in sighting
        order, each carrying the corpus payload plus its novelty verdict."""
        rows = self.connection.execute(
            "SELECT s.signature, s.shard_index, s.novel, s.created_at, f.payload_json"
            " FROM sightings s JOIN findings f ON f.signature = s.signature"
            " WHERE s.campaign_id = ? ORDER BY s.id",
            (campaign_id,),
        ).fetchall()
        findings = []
        for row in rows:
            record = json.loads(row["payload_json"])
            record["novel"] = bool(row["novel"])
            record["shard_index"] = row["shard_index"]
            record["observed_at"] = row["created_at"]
            findings.append(record)
        return findings

    def query_findings(
        self,
        signature: str | None = None,
        scenario: str | None = None,
        oracle: str | None = None,
        kind: str | None = None,
        since: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Cross-run corpus query (the ``GET /findings`` endpoint).

        ``since`` compares against the ISO-8601 ``created_at`` stamp of the
        first sighting; filters combine conjunctively.
        """
        clauses, parameters = [], []
        for column, value in (
            ("signature", signature),
            ("scenario", scenario),
            ("oracle", oracle),
            ("kind", kind),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                parameters.append(value)
        if since is not None:
            clauses.append("created_at >= ?")
            parameters.append(since)
        sql = "SELECT payload_json, campaign_id, created_at FROM findings"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        if limit is not None:
            sql += " LIMIT ?"
            parameters.append(int(limit))
        rows = self.connection.execute(sql, parameters).fetchall()
        findings = []
        for row in rows:
            record = json.loads(row["payload_json"])
            record["first_campaign_id"] = row["campaign_id"]
            record["first_observed_at"] = row["created_at"]
            findings.append(record)
        return findings

    def known_signatures(self) -> list[str]:
        """Every dedup signature in the corpus, in first-observation order."""
        rows = self.connection.execute("SELECT signature FROM findings ORDER BY id").fetchall()
        return [row["signature"] for row in rows]

    def preseed_deduplicator(self, deduplicator) -> int:
        """Seed a run's signature space from store history (the
        :class:`~repro.core.dedup.Deduplicator` bridge).

        Every historical signature becomes "already seen": the bandit
        scheduler then rewards only findings novel *across runs*, steering
        budget toward underrepresented plan shapes.  Returns how many
        signatures were loaded.
        """
        signatures = self.known_signatures()
        deduplicator.preseed_signatures(signatures)
        return len(signatures)

    def sighting_count(self, campaign_id: str) -> int:
        """How many finding observations a campaign has recorded so far."""
        row = self.connection.execute(
            "SELECT COUNT(*) FROM sightings WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return row[0]

    def novel_finding_count(self, campaign_id: str) -> int:
        """How many of a campaign's sightings were globally novel."""
        row = self.connection.execute(
            "SELECT COUNT(*) FROM sightings WHERE campaign_id = ? AND novel = 1",
            (campaign_id,),
        ).fetchone()
        return row[0]

    # -------------------------------------------------------------- arm stats
    def save_arm_stats(
        self, campaign_id: str, shard_index: int, stats: dict[str, dict]
    ) -> None:
        """Upsert one shard's cumulative per-arm scheduler counters."""
        with self.transaction():
            for arm, row in stats.items():
                self.connection.execute(
                    "INSERT OR REPLACE INTO arm_stats (campaign_id, shard_index, arm,"
                    " pulls, queries, novel_signatures) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        shard_index,
                        arm,
                        row.get("pulls", 0),
                        row.get("queries", 0),
                        row.get("novel_signatures", 0),
                    ),
                )

    def campaign_arm_stats(self, campaign_id: str) -> dict[str, dict]:
        """Per-arm stats merged across shards by summation (posterior
        re-derived), in the :attr:`CampaignResult.scheduler_stats` shape."""
        from repro.core.scheduler import merge_scheduler_stats

        rows = self.connection.execute(
            "SELECT shard_index, arm, pulls, queries, novel_signatures FROM arm_stats"
            " WHERE campaign_id = ? ORDER BY shard_index, arm",
            (campaign_id,),
        ).fetchall()
        merged: dict[str, dict] = {}
        for row in rows:
            merged = merge_scheduler_stats(
                merged,
                {
                    row["arm"]: {
                        "pulls": row["pulls"],
                        "queries": row["queries"],
                        "novel_signatures": row["novel_signatures"],
                    }
                },
            )
        return merged

    # ----------------------------------------------------------- trace events
    def record_trace_event(self, campaign_id: str, record: dict) -> None:
        """Ingest one :mod:`repro.core.trace` event (the store sink)."""
        with self.transaction():
            self.connection.execute(
                "INSERT INTO trace_events (campaign_id, shard, event, payload_json,"
                " created_at) VALUES (?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    int(record.get("shard", 0)),
                    str(record.get("event", "?")),
                    json.dumps(record, sort_keys=True),
                    _now(),
                ),
            )

    def record_trace_events(self, campaign_id: str, records: Iterable[dict]) -> None:
        """Batch ingest (one transaction; the per-round flush path)."""
        with self.transaction():
            for record in records:
                self.connection.execute(
                    "INSERT INTO trace_events (campaign_id, shard, event, payload_json,"
                    " created_at) VALUES (?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        int(record.get("shard", 0)),
                        str(record.get("event", "?")),
                        json.dumps(record, sort_keys=True),
                        _now(),
                    ),
                )

    def trace_events_after(
        self, campaign_id: str, after_id: int = 0, limit: int = 500
    ) -> list[dict]:
        """Events with id greater than ``after_id`` (the long-poll cursor)."""
        rows = self.connection.execute(
            "SELECT id, payload_json FROM trace_events WHERE campaign_id = ? AND id > ?"
            " ORDER BY id LIMIT ?",
            (campaign_id, after_id, limit),
        ).fetchall()
        events = []
        for row in rows:
            event = json.loads(row["payload_json"])
            event["cursor"] = row["id"]
            events.append(event)
        return events

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(
        self,
        campaign_id: str,
        shard_index: int,
        shard_count: int,
        seed: int,
        rounds_completed: int,
        elapsed_seconds: float,
        state: bytes,
        done: bool = False,
    ) -> None:
        with self.transaction():
            self.connection.execute(
                "INSERT OR REPLACE INTO checkpoints (campaign_id, shard_index,"
                " shard_count, seed, rounds_completed, elapsed_seconds, done, state,"
                " updated_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    shard_index,
                    shard_count,
                    seed,
                    rounds_completed,
                    elapsed_seconds,
                    1 if done else 0,
                    state,
                    _now(),
                ),
            )

    def load_checkpoint(self, campaign_id: str, shard_index: int) -> dict | None:
        row = self.connection.execute(
            "SELECT * FROM checkpoints WHERE campaign_id = ? AND shard_index = ?",
            (campaign_id, shard_index),
        ).fetchone()
        return dict(row) if row is not None else None

    def campaign_checkpoints(self, campaign_id: str) -> list[dict]:
        """Every shard cursor of a campaign (without the state blobs) —
        the progress surface of ``GET /campaigns/{id}``."""
        rows = self.connection.execute(
            "SELECT campaign_id, shard_index, shard_count, seed, rounds_completed,"
            " elapsed_seconds, done, updated_at FROM checkpoints WHERE campaign_id = ?"
            " ORDER BY shard_index",
            (campaign_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Global store statistics (the ``GET /stats`` body)."""

        def _count(sql: str, *parameters) -> int:
            return self.connection.execute(sql, parameters).fetchone()[0]

        by_kind = {
            row["kind"]: row["n"]
            for row in self.connection.execute(
                "SELECT kind, COUNT(*) AS n FROM findings GROUP BY kind ORDER BY kind"
            )
        }
        by_status = {
            row["status"]: row["n"]
            for row in self.connection.execute(
                "SELECT status, COUNT(*) AS n FROM campaigns GROUP BY status ORDER BY status"
            )
        }
        return {
            "campaigns": _count("SELECT COUNT(*) FROM campaigns"),
            "campaigns_by_status": by_status,
            "unique_findings": _count("SELECT COUNT(*) FROM findings"),
            "findings_by_kind": by_kind,
            "sightings": _count("SELECT COUNT(*) FROM sightings"),
            "novel_sightings": _count("SELECT COUNT(*) FROM sightings WHERE novel = 1"),
            "trace_events": _count("SELECT COUNT(*) FROM trace_events"),
        }


def wait_for_events(
    store: "FindingsStore",
    campaign_id: str,
    after_id: int,
    wait_seconds: float,
    poll_interval: float = 0.15,
) -> list[dict]:
    """Long-poll helper: block until the campaign has events past the
    cursor, its status goes terminal, or ``wait_seconds`` elapses."""
    deadline = time.monotonic() + max(0.0, wait_seconds)
    while True:
        events = store.trace_events_after(campaign_id, after_id)
        if events or time.monotonic() >= deadline:
            return events
        campaign = store.get_campaign(campaign_id)
        if campaign is None or campaign["status"] in ("completed", "failed"):
            return events
        time.sleep(poll_interval)
