"""Persistent campaign/findings storage (the campaign-as-a-service substrate).

One-shot CLI campaigns evaporate at process exit; this package gives the
tester a durable, cross-run memory on stdlib ``sqlite3`` (WAL mode — many
readers, shard writers serialized by short transactions):

* :class:`~repro.store.findings.FindingsStore` — the store handle: campaign
  rows (config snapshot, seed, status, budgets), a globally
  signature-deduplicated findings corpus (``record_finding`` is one
  INSERT-or-ignore and answers "was this novel across *all* runs ever
  recorded here?"), per-campaign sightings, per-arm scheduler statistics,
  and the ingested trace event stream of :mod:`repro.core.trace`;
* :class:`~repro.store.checkpoint.CheckpointState` — one shard's resumable
  cursor: ``(seed, shard_index, shard_count, rounds_completed)`` plus the
  partial result, deduplicator and scheduler state, which is everything
  :func:`~repro.core.campaign.round_rng` needs to replay the *identical*
  remaining round stream after an interruption;
* :mod:`~repro.store.serialize` — the JSON projections of findings and
  campaign results shared by the store, the service API and the CLI's
  ``--json`` output;
* :mod:`~repro.store.runner` — the store-backed campaign drivers
  (:func:`~repro.store.runner.run_store_campaign`,
  :func:`~repro.store.runner.resume_store_campaign`) the CLI's ``--store``/
  ``--resume`` flags and the HTTP control plane (:mod:`repro.service`) use.

Everything is stdlib; schema and semantics are documented in
``docs/SERVICE.md``.
"""

from repro.store.checkpoint import CheckpointState, accumulate_shard_result
from repro.store.findings import FindingsStore, StoreBinding
from repro.store.runner import resume_store_campaign, run_store_campaign
from repro.store.serialize import (
    crash_record,
    discrepancy_record,
    divergence_record,
    finding_records,
    oracle_finding_record,
    result_to_json,
)

__all__ = [
    "CheckpointState",
    "FindingsStore",
    "StoreBinding",
    "accumulate_shard_result",
    "crash_record",
    "discrepancy_record",
    "divergence_record",
    "finding_records",
    "oracle_finding_record",
    "result_to_json",
    "resume_store_campaign",
    "run_store_campaign",
]
