"""Shard checkpoint state: everything resume needs, nothing more.

The determinism argument is the same one the parallel orchestrator rests
on: rounds are *independently* seeded — global round ``g`` of a campaign
with seed ``S`` draws every random decision from ``random.Random(f"{S}|{g}")``
(:func:`repro.core.campaign.round_rng`), and shard ``k`` of ``n`` replays
exactly the global rounds ``g = k + i·n``.  A shard's position in its
stream is therefore fully described by the four integers
``(seed, shard_index, shard_count, rounds_completed)`` — no RNG state needs
saving, because the next round's RNG is *reconstructed* from the cursor.
Three pieces of accumulated state ride along so the resumed run is
indistinguishable from an uninterrupted one:

* the shard's partial :class:`~repro.core.campaign.CampaignResult`
  (counters and raw finding objects of the completed rounds);
* the :class:`~repro.core.dedup.DeduplicationResult` (which signatures and
  bug ids were already seen — what makes resumed novelty accounting, and
  hence the bandit scheduler's rewards, continue rather than restart);
* the :class:`~repro.core.scheduler.BanditScheduler` itself when one is
  active (its posterior counters *and* its Thompson draw RNG state, which
  unlike the round RNGs is sequential across rounds).

The state is pickled into the store's ``checkpoints.state`` blob — the
same serialization boundary the multiprocessing orchestrator already
proves every object here crosses — while the four cursor integers are
stored as plain columns for inspection and the API.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.campaign import CampaignResult
from repro.core.dedup import DeduplicationResult
from repro.core.scheduler import BanditScheduler, merge_scheduler_stats


@dataclass
class CheckpointState:
    """One shard's resumable cursor plus accumulated campaign state."""

    seed: int
    shard_index: int
    shard_count: int
    rounds_completed: int
    #: wall-clock seconds the shard has spent across all its (possibly
    #: interrupted) runs — resumed results report cumulative time.
    elapsed_seconds: float
    #: counters + raw findings of the rounds completed so far.
    result: CampaignResult
    #: the deduplicator's accumulated identity spaces.
    dedup: DeduplicationResult
    #: the feedback-guided allocator, when the campaign runs one.
    scheduler: Optional[BanditScheduler] = None

    def to_blob(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_blob(cls, blob: bytes) -> "CheckpointState":
        state = pickle.loads(blob)
        if not isinstance(state, cls):
            raise TypeError(f"checkpoint blob held {type(state).__name__}, not CheckpointState")
        return state


def accumulate_shard_result(
    partial: CampaignResult | None, current: CampaignResult
) -> CampaignResult:
    """Fold a shard's pre-interruption partial result into its current run.

    This is *not* the cross-shard :meth:`CampaignResult.merge` — both
    results belong to the same shard stream, so counters simply add and
    finding lists concatenate in round order, with no timeline rebasing.
    The unique-bug fields are taken from ``current`` alone: the resumed
    campaign runs with the deduplicator state restored from the checkpoint,
    so its result already reports the *cumulative* identity spaces, and the
    same holds for ``scheduler_stats`` (the restored scheduler's counters
    are cumulative).  ``total_seconds`` is left for the caller, which knows
    the shard's accumulated elapsed time.
    """
    if partial is None:
        return current
    caches = dict(partial.cache_stats)
    for key, value in current.cache_stats.items():
        caches[key] = caches.get(key, 0) + value
    by_scenario = dict(partial.queries_by_scenario)
    for name, count in current.queries_by_scenario.items():
        by_scenario[name] = by_scenario.get(name, 0) + count
    by_oracle = dict(partial.queries_by_oracle)
    for name, count in current.queries_by_oracle.items():
        by_oracle[name] = by_oracle.get(name, 0) + count
    scheduler_stats = current.scheduler_stats
    if not scheduler_stats and partial.scheduler_stats:
        # a resume that ran zero new rounds still reports the partial's
        # arm statistics rather than dropping them.
        scheduler_stats = merge_scheduler_stats(partial.scheduler_stats, {})
    return replace(
        current,
        rounds=partial.rounds + current.rounds,
        queries_run=partial.queries_run + current.queries_run,
        queries_by_scenario=by_scenario,
        queries_by_oracle=by_oracle,
        cache_stats=caches,
        errors_ignored=partial.errors_ignored + current.errors_ignored,
        discrepancies=partial.discrepancies + current.discrepancies,
        oracle_findings=partial.oracle_findings + current.oracle_findings,
        crashes=partial.crashes + current.crashes,
        divergences=partial.divergences + current.divergences,
        divergence_queries=partial.divergence_queries + current.divergence_queries,
        reference_errors_ignored=(
            partial.reference_errors_ignored + current.reference_errors_ignored
        ),
        scheduler_stats=scheduler_stats,
        sdbms_seconds=partial.sdbms_seconds + current.sdbms_seconds,
    )
