"""JSON projections of findings and campaign results.

One serializer serves three consumers — the persistent store's
``payload_json`` column, the HTTP control plane's response bodies, and the
CLI's ``--json`` summary — so "what the service returns for a campaign" and
"what the CLI prints for the same seed" are the same bytes by construction
(the CI service smoke job diffs them).

Projections are *reporting* surfaces: they carry the signature (the store's
global dedup key), the ground-truth bug ids, the human description and the
rendered SQL, but not the live query/IR objects — those stay in the pickled
checkpoint state (:mod:`repro.store.checkpoint`), which is what resume
rehydrates.  Every value is JSON-native (str/int/float/bool/None, lists,
string-keyed dicts), so ``loads(dumps(x)) == x`` holds exactly — the
round-trip stability contract ``tests/unit/test_result_json.py`` pins.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from repro.backends.differential import BackendDivergence
from repro.core.dedup import signature_identity
from repro.core.oracle import CrashReport, Discrepancy
from repro.oracles import OracleFinding


def jsonable(value: Any) -> Any:
    """Normalise ``value`` into JSON-native types (tuples become lists).

    The round-trip stability contract (``loads(dumps(x)) == x``) needs the
    normalisation done *before* serialisation — a tuple survives ``dumps``
    but comes back a list, so tuples may not appear in the projection.
    Unknown objects degrade to ``repr`` rather than failing: a summary that
    drops fidelity on an exotic result value beats a campaign that cannot
    report.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return repr(value)


def crash_signature(crash: CrashReport) -> str:
    """The global-dedup key of a crash finding.

    Crashes have no query shape; ground truth (the injected bug id) is the
    identity when the fault layer attributed one, the raising statement and
    message otherwise.
    """
    if crash.bug_id is not None:
        return f"crash|{crash.bug_id}"
    return f"crash|{crash.statement}|{crash.message}"


def discrepancy_record(discrepancy: Discrepancy) -> dict:
    """Project one AEI discrepancy onto the shared finding-record shape."""
    label = getattr(discrepancy.query, "label", None) or getattr(
        discrepancy.query, "predicate", "?"
    )
    return {
        "kind": "discrepancy",
        "scenario": discrepancy.scenario,
        "oracle": None,
        "label": str(label),
        "signature": signature_identity(discrepancy),
        "bug_ids": sorted(set(discrepancy.triggered_bug_ids)),
        "detail": discrepancy.describe(),
        "sql": None,
    }


def oracle_finding_record(finding: OracleFinding) -> dict:
    """Project one single-database oracle-family finding."""
    return {
        "kind": "oracle-finding",
        "scenario": None,
        "oracle": finding.oracle,
        "label": finding.label,
        "signature": finding.signature(),
        "bug_ids": sorted(set(finding.triggered_bug_ids)),
        "detail": finding.describe(),
        "sql": finding.sql,
    }


def divergence_record(divergence: BackendDivergence) -> dict:
    """Project one cross-backend divergence."""
    return {
        "kind": "divergence",
        "scenario": divergence.scenario,
        "oracle": None,
        "label": divergence.label,
        "signature": divergence.signature(),
        "bug_ids": sorted(set(divergence.triggered_bug_ids)),
        "detail": divergence.describe(),
        "sql": divergence.sql,
    }


def crash_record(crash: CrashReport) -> dict:
    """Project one crash report."""
    return {
        "kind": "crash",
        "scenario": None,
        "oracle": None,
        "label": crash.bug_id or "crash",
        "signature": crash_signature(crash),
        "bug_ids": [crash.bug_id] if crash.bug_id is not None else [],
        "detail": f"{crash.statement}: {crash.message}",
        "sql": crash.statement,
    }


def finding_records(result) -> list[dict]:
    """Every finding of a :class:`CampaignResult`, projected, in result
    order (discrepancies, oracle findings, divergences, crashes — the order
    the CLI prints and the merge concatenates)."""
    records: list[dict] = []
    records.extend(discrepancy_record(d) for d in result.discrepancies)
    records.extend(oracle_finding_record(f) for f in result.oracle_findings)
    records.extend(divergence_record(d) for d in result.divergences)
    records.extend(crash_record(c) for c in result.crashes)
    return records


def unique_signature_stream(records: list[dict]) -> list[str]:
    """First-appearance-ordered unique signatures of a finding stream —
    exactly what a :class:`~repro.core.dedup.Deduplicator` that observed the
    stream in this order would hold."""
    return list(dict.fromkeys(record["signature"] for record in records))


def result_to_json(result) -> dict:
    """The machine-readable summary of a :class:`CampaignResult`.

    The CLI's ``--json`` output and the service's completed-campaign
    ``result`` body.  For a fixed ``(seed, shards)`` configuration, the
    ``timing`` sub-dict and the ``summary`` string (which embeds elapsed
    seconds) are the *only* run-to-run variance — everything else is
    byte-stable, which the round-trip test pins by popping exactly those
    two keys.
    """
    records = finding_records(result)
    return {
        "config": jsonable(asdict(result.config)),
        "rounds": result.rounds,
        "queries_run": result.queries_run,
        "queries_by_scenario": jsonable(result.queries_by_scenario),
        "queries_by_oracle": jsonable(result.queries_by_oracle),
        "cache_stats": jsonable(result.cache_stats),
        "scheduler_stats": jsonable(result.scheduler_stats),
        "errors_ignored": result.errors_ignored,
        "findings": records,
        "finding_counts": {
            "discrepancies": len(result.discrepancies),
            "oracle_findings": len(result.oracle_findings),
            "divergences": len(result.divergences),
            "crashes": len(result.crashes),
        },
        "unique_signatures": unique_signature_stream(records),
        "unique_bug_ids": sorted(result.unique_bug_ids),
        "unique_bug_count": result.unique_bug_count,
        "divergence_queries": result.divergence_queries,
        "reference_errors_ignored": result.reference_errors_ignored,
        "shard_count": result.shard_count,
        "timing": {
            "total_seconds": result.total_seconds,
            "sdbms_seconds": result.sdbms_seconds,
            "materialise_seconds": result.materialise_seconds,
            "execute_seconds": result.execute_seconds,
        },
        "summary": result.summary(),
    }
