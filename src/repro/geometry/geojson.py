"""GeoJSON (RFC 7946) reading and writing.

The paper's limitations section (Section 7) points out that AEI does not
exercise the file reading/conversion layer of an SDBMS (implemented by GDAL
in the real systems) and reports a GeoJSON bug found by *differential*
testing instead: DuckDB Spatial returned NULL for
``{"type": "Polygon", "coordinates": []}`` where ``POLYGON EMPTY`` was
expected.  This module is the conversion-layer substrate for that
experiment: an exact GeoJSON reader/writer exposed to SQL as
``ST_AsGeoJSON`` / ``ST_GeomFromGeoJSON`` and used by the format
differential oracle in :mod:`repro.baselines.format_differential`.

Coordinates are written as integers when they are integral and as floats
otherwise; reading converts every number exactly via :class:`~fractions.Fraction`.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from repro.errors import WKTParseError
from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class GeoJSONParseError(WKTParseError):
    """Raised when a GeoJSON document cannot be interpreted as a geometry."""


# ---------------------------------------------------------------------------
# Writing.
# ---------------------------------------------------------------------------
def _number(value: Fraction) -> int | float:
    if value.denominator == 1:
        return int(value)
    return float(value)


def _position(coordinate: Coordinate) -> list:
    return [_number(coordinate.x), _number(coordinate.y)]


def _ring_positions(ring: list[Coordinate]) -> list[list]:
    return [_position(coordinate) for coordinate in ring]


def geometry_to_mapping(geometry: Geometry) -> dict[str, Any]:
    """Convert a geometry into a GeoJSON-style mapping (Python dict)."""
    if isinstance(geometry, Point):
        coordinates = [] if geometry.is_empty else _position(geometry.coordinate)
        return {"type": "Point", "coordinates": coordinates}
    if isinstance(geometry, LineString):
        return {"type": "LineString", "coordinates": _ring_positions(geometry.points)}
    if isinstance(geometry, Polygon):
        rings = [] if geometry.is_empty else [_ring_positions(ring) for ring in geometry.rings()]
        return {"type": "Polygon", "coordinates": rings}
    if isinstance(geometry, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [
                _position(point.coordinate) for point in geometry.geoms if not point.is_empty
            ],
        }
    if isinstance(geometry, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [
                _ring_positions(line.points) for line in geometry.geoms if not line.is_empty
            ],
        }
    if isinstance(geometry, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [
                [_ring_positions(ring) for ring in polygon.rings()]
                for polygon in geometry.geoms
                if not polygon.is_empty
            ],
        }
    if isinstance(geometry, GeometryCollection):
        return {
            "type": "GeometryCollection",
            "geometries": [geometry_to_mapping(element) for element in geometry.geoms],
        }
    raise GeoJSONParseError(f"cannot convert {geometry.geom_type} to GeoJSON")


def dump_geojson(geometry: Geometry) -> str:
    """Serialize a geometry as a GeoJSON document string."""
    return json.dumps(geometry_to_mapping(geometry), separators=(",", ":"))


# ---------------------------------------------------------------------------
# Reading.
# ---------------------------------------------------------------------------
def _parse_position(values: Any) -> Coordinate:
    if not isinstance(values, (list, tuple)) or len(values) < 2:
        raise GeoJSONParseError(f"invalid GeoJSON position {values!r}")
    return Coordinate(Fraction(str(values[0])), Fraction(str(values[1])))


def _parse_positions(values: Any) -> list[Coordinate]:
    if not isinstance(values, (list, tuple)):
        raise GeoJSONParseError(f"invalid GeoJSON coordinate array {values!r}")
    return [_parse_position(value) for value in values]


def mapping_to_geometry(mapping: dict[str, Any]) -> Geometry:
    """Convert a GeoJSON-style mapping into a geometry."""
    if not isinstance(mapping, dict) or "type" not in mapping:
        raise GeoJSONParseError(f"not a GeoJSON geometry object: {mapping!r}")
    kind = str(mapping["type"])

    if kind == "GeometryCollection":
        geometries = mapping.get("geometries", [])
        if not isinstance(geometries, list):
            raise GeoJSONParseError("GeometryCollection needs a 'geometries' array")
        return GeometryCollection([mapping_to_geometry(element) for element in geometries])

    coordinates = mapping.get("coordinates", None)
    if coordinates is None:
        raise GeoJSONParseError(f"GeoJSON {kind} object is missing 'coordinates'")

    if kind == "Point":
        if coordinates == []:
            return Point.empty()
        return Point(_parse_position(coordinates))
    if kind == "LineString":
        return LineString(_parse_positions(coordinates))
    if kind == "Polygon":
        if coordinates == []:
            return Polygon.empty()
        rings = [_parse_positions(ring) for ring in coordinates]
        return Polygon(rings[0], rings[1:])
    if kind == "MultiPoint":
        return MultiPoint([Point(_parse_position(value)) for value in coordinates])
    if kind == "MultiLineString":
        return MultiLineString([LineString(_parse_positions(line)) for line in coordinates])
    if kind == "MultiPolygon":
        polygons = []
        for polygon_coordinates in coordinates:
            if polygon_coordinates == []:
                polygons.append(Polygon.empty())
                continue
            rings = [_parse_positions(ring) for ring in polygon_coordinates]
            polygons.append(Polygon(rings[0], rings[1:]))
        return MultiPolygon(polygons)
    raise GeoJSONParseError(f"unsupported GeoJSON geometry type {kind!r}")


def load_geojson(text: str) -> Geometry:
    """Parse a GeoJSON document string into a geometry."""
    try:
        mapping = json.loads(text)
    except json.JSONDecodeError as error:
        raise GeoJSONParseError(f"invalid JSON: {error}") from error
    return mapping_to_geometry(mapping)
