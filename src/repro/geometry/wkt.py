"""Well-Known Text (WKT) reader and writer.

The reader accepts the WKT subset used throughout the paper: the seven 2D
geometry types, EMPTY variants both at the top level (``POINT EMPTY``) and as
collection elements (``MULTILINESTRING((0 2,1 0), EMPTY)``), and optional
parentheses around MULTIPOINT members (both ``MULTIPOINT(0 0, 1 1)`` and
``MULTIPOINT((0 0),(1 1))``).

The writer emits the canonical uppercase form the paper's listings use, with
integral ordinates rendered without a decimal point.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import GeometryTypeError, WKTParseError
from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    format_number,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(
        [A-Za-z][A-Za-z0-9_]* |          # keywords / type names
        -?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)? |  # numbers
        \( | \) | ,
    )
    """,
    re.VERBOSE,
)

_NUMBER_RE = re.compile(r"-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?$")


class _TokenStream:
    """A small pull-based token stream over a WKT string."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise WKTParseError(f"unexpected character near {remainder[:20]!r}")
            tokens.append(match.group(1))
            pos = match.end()
        return tokens

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise WKTParseError(f"unexpected end of WKT in {self.text!r}")
        self.position += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token.upper() != expected.upper():
            raise WKTParseError(
                f"expected {expected!r} but found {token!r} in {self.text!r}"
            )
        return token

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)


def load_wkt(text: str) -> Geometry:
    """Parse a WKT string into a :class:`Geometry`.

    Raises :class:`~repro.errors.WKTParseError` on malformed input.
    """
    if not isinstance(text, str):
        raise WKTParseError(f"WKT must be a string, got {type(text).__name__}")
    stream = _TokenStream(text)
    try:
        geometry = _parse_geometry(stream)
    except GeometryTypeError as error:
        # Structurally impossible geometries (e.g. a two-point polygon ring)
        # surface as parse errors, the way SDBMS WKT readers report them.
        raise WKTParseError(str(error)) from error
    if not stream.at_end():
        raise WKTParseError(f"trailing content after geometry in {text!r}")
    return geometry


def _parse_geometry(stream: _TokenStream) -> Geometry:
    type_name = stream.next().upper()
    parsers = {
        "POINT": _parse_point,
        "LINESTRING": _parse_linestring,
        "POLYGON": _parse_polygon,
        "MULTIPOINT": _parse_multipoint,
        "MULTILINESTRING": _parse_multilinestring,
        "MULTIPOLYGON": _parse_multipolygon,
        "GEOMETRYCOLLECTION": _parse_collection,
    }
    if type_name not in parsers:
        raise WKTParseError(f"unknown geometry type {type_name!r}")
    return parsers[type_name](stream)


def _is_empty(stream: _TokenStream) -> bool:
    token = stream.peek()
    if token is not None and token.upper() == "EMPTY":
        stream.next()
        return True
    return False


def _parse_number(stream: _TokenStream) -> str:
    token = stream.next()
    if not _NUMBER_RE.match(token):
        raise WKTParseError(f"expected a number, found {token!r}")
    return token


def _parse_coordinate(stream: _TokenStream) -> Coordinate:
    x = _parse_number(stream)
    y = _parse_number(stream)
    return Coordinate(x, y)


def _parse_coordinate_list(stream: _TokenStream) -> list[Coordinate]:
    stream.expect("(")
    coords = [_parse_coordinate(stream)]
    while stream.peek() == ",":
        stream.next()
        coords.append(_parse_coordinate(stream))
    stream.expect(")")
    return coords


def _parse_point(stream: _TokenStream) -> Point:
    if _is_empty(stream):
        return Point.empty()
    stream.expect("(")
    coord = _parse_coordinate(stream)
    stream.expect(")")
    return Point(coord)


def _parse_linestring(stream: _TokenStream) -> LineString:
    if _is_empty(stream):
        return LineString.empty()
    return LineString(_parse_coordinate_list(stream))


def _parse_polygon(stream: _TokenStream) -> Polygon:
    if _is_empty(stream):
        return Polygon.empty()
    stream.expect("(")
    rings = [_parse_coordinate_list(stream)]
    while stream.peek() == ",":
        stream.next()
        rings.append(_parse_coordinate_list(stream))
    stream.expect(")")
    return Polygon(rings[0], rings[1:])


def _parse_multi_elements(stream: _TokenStream, parse_element) -> Iterator:
    """Parse a parenthesised, comma-separated element list with EMPTY members."""
    stream.expect("(")
    while True:
        token = stream.peek()
        if token is not None and token.upper() == "EMPTY":
            stream.next()
            yield None
        else:
            yield parse_element(stream)
        if stream.peek() == ",":
            stream.next()
            continue
        break
    stream.expect(")")


def _parse_multipoint(stream: _TokenStream) -> MultiPoint:
    if _is_empty(stream):
        return MultiPoint.empty()

    def parse_element(inner: _TokenStream) -> Point:
        if inner.peek() == "(":
            inner.next()
            coord = _parse_coordinate(inner)
            inner.expect(")")
            return Point(coord)
        return Point(_parse_coordinate(inner))

    elements = [
        Point.empty() if element is None else element
        for element in _parse_multi_elements(stream, parse_element)
    ]
    return MultiPoint(elements)


def _parse_multilinestring(stream: _TokenStream) -> MultiLineString:
    if _is_empty(stream):
        return MultiLineString.empty()
    elements = [
        LineString.empty() if element is None else element
        for element in _parse_multi_elements(
            stream, lambda inner: LineString(_parse_coordinate_list(inner))
        )
    ]
    return MultiLineString(elements)


def _parse_multipolygon(stream: _TokenStream) -> MultiPolygon:
    if _is_empty(stream):
        return MultiPolygon.empty()

    def parse_element(inner: _TokenStream) -> Polygon:
        inner.expect("(")
        rings = [_parse_coordinate_list(inner)]
        while inner.peek() == ",":
            inner.next()
            rings.append(_parse_coordinate_list(inner))
        inner.expect(")")
        return Polygon(rings[0], rings[1:])

    elements = [
        Polygon.empty() if element is None else element
        for element in _parse_multi_elements(stream, parse_element)
    ]
    return MultiPolygon(elements)


def _parse_collection(stream: _TokenStream) -> GeometryCollection:
    if _is_empty(stream):
        return GeometryCollection.empty()
    stream.expect("(")
    elements = [_parse_geometry(stream)]
    while stream.peek() == ",":
        stream.next()
        elements.append(_parse_geometry(stream))
    stream.expect(")")
    return GeometryCollection(elements)


def dump_wkt(geometry: Geometry) -> str:
    """Serialise a geometry to canonical uppercase WKT."""
    if isinstance(geometry, Point):
        if geometry.is_empty:
            return "POINT EMPTY"
        return f"POINT({_coord(geometry.coordinate)})"
    if isinstance(geometry, LineString):
        if geometry.is_empty:
            return "LINESTRING EMPTY"
        return f"LINESTRING({_coords(geometry.points)})"
    if isinstance(geometry, Polygon):
        if geometry.is_empty:
            return "POLYGON EMPTY"
        rings = ",".join(f"({_coords(ring)})" for ring in geometry.rings())
        return f"POLYGON({rings})"
    if isinstance(geometry, MultiPoint):
        if not geometry.geoms:
            return "MULTIPOINT EMPTY"
        parts = [
            "EMPTY" if p.is_empty else f"({_coord(p.coordinate)})" for p in geometry.geoms
        ]
        return f"MULTIPOINT({','.join(parts)})"
    if isinstance(geometry, MultiLineString):
        if not geometry.geoms:
            return "MULTILINESTRING EMPTY"
        parts = [
            "EMPTY" if line.is_empty else f"({_coords(line.points)})"
            for line in geometry.geoms
        ]
        return f"MULTILINESTRING({','.join(parts)})"
    if isinstance(geometry, MultiPolygon):
        if not geometry.geoms:
            return "MULTIPOLYGON EMPTY"
        parts = []
        for polygon in geometry.geoms:
            if polygon.is_empty:
                parts.append("EMPTY")
            else:
                rings = ",".join(f"({_coords(ring)})" for ring in polygon.rings())
                parts.append(f"({rings})")
        return f"MULTIPOLYGON({','.join(parts)})"
    if isinstance(geometry, GeometryCollection):
        if not geometry.geoms:
            return "GEOMETRYCOLLECTION EMPTY"
        parts = [dump_wkt(g) for g in geometry.geoms]
        return f"GEOMETRYCOLLECTION({','.join(parts)})"
    raise WKTParseError(f"cannot serialise object of type {type(geometry).__name__}")


def _coord(coordinate) -> str:
    return f"{format_number(coordinate.x)} {format_number(coordinate.y)}"


def _coords(coordinates) -> str:
    return ",".join(_coord(c) for c in coordinates)
