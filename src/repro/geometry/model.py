"""OGC simple-feature geometry model with exact rational coordinates.

The model covers the seven 2D geometry types the paper targets (Figure 2):
POINT, LINESTRING, POLYGON, MULTIPOINT, MULTILINESTRING, MULTIPOLYGON and
GEOMETRYCOLLECTION, including EMPTY variants of each.

Coordinates are stored as :class:`fractions.Fraction` so every topological
decision made downstream (DE-9IM relate, predicates) is exact.  Floats are
accepted on input and converted exactly; WKT output renders integral values
without a decimal point, matching the style of the paper's listings.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Union

from repro.errors import GeometryTypeError

Numeric = Union[int, float, Fraction, str]


def _to_fraction(value: Numeric) -> Fraction:
    """Convert a numeric value to an exact Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise GeometryTypeError("boolean is not a valid coordinate value")
    if isinstance(value, (int, float, str)):
        return Fraction(value)
    raise GeometryTypeError(f"cannot interpret {value!r} as a coordinate value")


class Coordinate:
    """An exact 2D coordinate.

    Coordinates are immutable and hashable, so they can be used as keys in
    the topology engine's node maps.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: Numeric, y: Numeric):
        object.__setattr__(self, "x", _to_fraction(x))
        object.__setattr__(self, "y", _to_fraction(y))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Coordinate is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coordinate):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __lt__(self, other: "Coordinate") -> bool:
        return (self.x, self.y) < (other.x, other.y)

    def __le__(self, other: "Coordinate") -> bool:
        return (self.x, self.y) <= (other.x, other.y)

    def __repr__(self) -> str:
        return f"Coordinate({format_number(self.x)}, {format_number(self.y)})"

    def as_floats(self) -> tuple[float, float]:
        """Return the coordinate as a (float, float) pair."""
        return float(self.x), float(self.y)

    def translated(self, dx: Numeric, dy: Numeric) -> "Coordinate":
        """Return a new coordinate shifted by (dx, dy)."""
        return Coordinate(self.x + _to_fraction(dx), self.y + _to_fraction(dy))


def format_number(value: Fraction) -> str:
    """Render a Fraction the way SDBMSs render coordinates in WKT."""
    if value.denominator == 1:
        return str(value.numerator)
    as_float = float(value)
    text = repr(as_float)
    if text.endswith(".0"):
        text = text[:-2]
    return text


CoordinateInput = Union[Coordinate, Sequence[Numeric]]


def as_coordinate(value: CoordinateInput) -> Coordinate:
    """Coerce a coordinate-like value (Coordinate or 2-sequence) to Coordinate."""
    if isinstance(value, Coordinate):
        return value
    seq = list(value)
    if len(seq) != 2:
        raise GeometryTypeError(f"expected an (x, y) pair, got {value!r}")
    return Coordinate(seq[0], seq[1])


#: sentinel distinguishing "envelope not computed yet" from "empty geometry".
_ENVELOPE_UNSET = object()


class Geometry:
    """Base class for every geometry.

    Subclasses implement the OGC accessors used throughout the library:
    ``geom_type``, ``dimension``, ``is_empty``, ``coordinates`` and
    ``wkt``.

    Geometries are immutable after construction; the ``wkt`` and
    ``envelope`` accessors rely on that to memoize their results.
    """

    #: OGC type name, e.g. ``"POINT"``; set on every subclass.
    geom_type: str = "GEOMETRY"

    @property
    def is_empty(self) -> bool:
        """True if the geometry contains no coordinates at all."""
        raise NotImplementedError

    @property
    def dimension(self) -> int:
        """Topological dimension: 0 for points, 1 for lines, 2 for areas.

        Empty geometries report the dimension of their declared type, the
        convention PostGIS follows (``ST_Dimension('POINT EMPTY') = 0``).
        """
        raise NotImplementedError

    def coordinates(self) -> Iterator[Coordinate]:
        """Yield every coordinate of the geometry in definition order."""
        raise NotImplementedError

    def transform(self, func) -> "Geometry":
        """Return a copy with ``func`` applied to every coordinate.

        ``func`` receives a :class:`Coordinate` and must return one.  The
        structure of the geometry (types, nesting, ring order) is preserved.
        """
        raise NotImplementedError

    @property
    def wkt(self) -> str:
        """Well-Known Text representation of the geometry.

        Memoized per instance: geometries are immutable after construction,
        and ``wkt`` is the identity every cache in the engine keys on
        (relate memo, prepared-geometry cache, ``__eq__``/``__hash__``), so
        serialising once per object instead of once per comparison is one of
        the fast-path layer's main savings.
        """
        memo = getattr(self, "_wkt_memo", None)
        if memo is None:
            from repro.geometry.wkt import dump_wkt

            memo = dump_wkt(self)
            self._wkt_memo = memo
        return memo

    def num_coordinates(self) -> int:
        """Total number of coordinates in the geometry."""
        return sum(1 for _ in self.coordinates())

    def envelope(self) -> "Envelope | None":
        """Axis-aligned bounding box, or None for an empty geometry.

        Memoized per instance (geometries are immutable); the envelope is
        probed on every index filter and relate fast-reject.
        """
        memo = getattr(self, "_envelope_memo", _ENVELOPE_UNSET)
        if memo is _ENVELOPE_UNSET:
            coords = list(self.coordinates())
            if not coords:
                memo = None
            else:
                xs = [c.x for c in coords]
                ys = [c.y for c in coords]
                memo = Envelope(min(xs), min(ys), max(xs), max(ys))
            self._envelope_memo = memo
        return memo

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return self.wkt == other.wkt

    def __hash__(self) -> int:
        return hash(self.wkt)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.wkt}>"


class Envelope:
    """Axis-aligned bounding box used by the R-tree index and fast rejects."""

    #: ``_float_box`` memoizes the outward-rounded float box the columnar
    #: kernels derive from the exact bounds (see
    #: :func:`repro.geometry.columnar.envelope_float_box`); envelopes are
    #: immutable, and the reuse layer shares interned geometry instances —
    #: and therefore their envelope memos — across campaign rounds.
    __slots__ = ("min_x", "min_y", "max_x", "max_y", "_float_box")

    def __init__(self, min_x: Fraction, min_y: Fraction, max_x: Fraction, max_y: Fraction):
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self._float_box = None

    def intersects(self, other: "Envelope") -> bool:
        """True if the two boxes share at least one point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains(self, other: "Envelope") -> bool:
        """True if ``other`` lies entirely inside this box (borders allowed)."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def expanded(self, other: "Envelope") -> "Envelope":
        """Smallest envelope covering both boxes."""
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def area(self) -> Fraction:
        """Area of the box (zero for degenerate boxes)."""
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def margin(self) -> Fraction:
        """Half-perimeter, used by R-tree split heuristics."""
        return (self.max_x - self.min_x) + (self.max_y - self.min_y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.max_x == other.max_x
            and self.max_y == other.max_y
        )

    def __repr__(self) -> str:
        return (
            f"Envelope({format_number(self.min_x)}, {format_number(self.min_y)}, "
            f"{format_number(self.max_x)}, {format_number(self.max_y)})"
        )


class Point(Geometry):
    """A 0-dimensional geometry: a single coordinate or EMPTY."""

    geom_type = "POINT"

    def __init__(self, coordinate: CoordinateInput | None = None):
        self.coordinate = as_coordinate(coordinate) if coordinate is not None else None

    @classmethod
    def empty(cls) -> "Point":
        """Construct POINT EMPTY."""
        return cls(None)

    @property
    def is_empty(self) -> bool:
        return self.coordinate is None

    @property
    def dimension(self) -> int:
        return 0

    def coordinates(self) -> Iterator[Coordinate]:
        if self.coordinate is not None:
            yield self.coordinate

    def transform(self, func) -> "Point":
        if self.coordinate is None:
            return Point.empty()
        return Point(func(self.coordinate))

    @property
    def x(self) -> Fraction:
        """X ordinate; raises on EMPTY."""
        if self.coordinate is None:
            raise GeometryTypeError("POINT EMPTY has no x ordinate")
        return self.coordinate.x

    @property
    def y(self) -> Fraction:
        """Y ordinate; raises on EMPTY."""
        if self.coordinate is None:
            raise GeometryTypeError("POINT EMPTY has no y ordinate")
        return self.coordinate.y


class LineString(Geometry):
    """A 1-dimensional geometry: an ordered sequence of coordinates."""

    geom_type = "LINESTRING"

    def __init__(self, coordinates: Iterable[CoordinateInput] = ()):
        self.points: list[Coordinate] = [as_coordinate(c) for c in coordinates]
        if len(self.points) == 1:
            raise GeometryTypeError("a LINESTRING needs zero or at least two points")

    @classmethod
    def empty(cls) -> "LineString":
        """Construct LINESTRING EMPTY."""
        return cls(())

    @property
    def is_empty(self) -> bool:
        return not self.points

    @property
    def dimension(self) -> int:
        return 1

    def coordinates(self) -> Iterator[Coordinate]:
        yield from self.points

    def transform(self, func) -> "LineString":
        return LineString([func(p) for p in self.points])

    @property
    def is_closed(self) -> bool:
        """True if the first and last coordinates coincide (and non-empty)."""
        return bool(self.points) and self.points[0] == self.points[-1]

    def segments(self) -> Iterator[tuple[Coordinate, Coordinate]]:
        """Yield consecutive coordinate pairs (possibly degenerate)."""
        for a, b in zip(self.points, self.points[1:]):
            yield a, b

    def reversed(self) -> "LineString":
        """Return the linestring with coordinate order reversed."""
        return LineString(list(reversed(self.points)))


class Polygon(Geometry):
    """A 2-dimensional geometry: an exterior ring plus optional holes.

    Rings are stored as closed coordinate lists (first == last).  Rings given
    unclosed are closed automatically, matching the leniency of SDBMS WKT
    readers.
    """

    geom_type = "POLYGON"

    def __init__(
        self,
        exterior: Iterable[CoordinateInput] = (),
        holes: Iterable[Iterable[CoordinateInput]] = (),
    ):
        self.exterior: list[Coordinate] = self._close_ring([as_coordinate(c) for c in exterior])
        self.holes: list[list[Coordinate]] = [
            self._close_ring([as_coordinate(c) for c in hole]) for hole in holes
        ]

    @staticmethod
    def _close_ring(ring: list[Coordinate]) -> list[Coordinate]:
        if not ring:
            return ring
        if len(ring) < 3:
            raise GeometryTypeError("a polygon ring needs at least three distinct points")
        if ring[0] != ring[-1]:
            ring = ring + [ring[0]]
        if len(ring) < 4:
            raise GeometryTypeError("a closed polygon ring needs at least four coordinates")
        return ring

    @classmethod
    def empty(cls) -> "Polygon":
        """Construct POLYGON EMPTY."""
        return cls((), ())

    @property
    def is_empty(self) -> bool:
        return not self.exterior

    @property
    def dimension(self) -> int:
        return 2

    def rings(self) -> Iterator[list[Coordinate]]:
        """Yield the exterior ring then each hole."""
        if self.exterior:
            yield self.exterior
        yield from self.holes

    def coordinates(self) -> Iterator[Coordinate]:
        for ring in self.rings():
            yield from ring

    def transform(self, func) -> "Polygon":
        if self.is_empty:
            return Polygon.empty()
        return Polygon(
            [func(p) for p in self.exterior],
            [[func(p) for p in hole] for hole in self.holes],
        )


class _MultiGeometry(Geometry):
    """Shared behaviour for MULTI* and GEOMETRYCOLLECTION."""

    #: class of allowed elements; ``Geometry`` means any type is allowed.
    element_type: type = Geometry

    def __init__(self, geometries: Iterable[Geometry] = ()):
        self.geoms: list[Geometry] = list(geometries)
        for geom in self.geoms:
            if not isinstance(geom, self.element_type):
                raise GeometryTypeError(
                    f"{self.geom_type} cannot contain a {geom.geom_type}"
                )

    @classmethod
    def empty(cls):
        """Construct an EMPTY collection of this type."""
        return cls(())

    @property
    def is_empty(self) -> bool:
        return all(g.is_empty for g in self.geoms)

    def coordinates(self) -> Iterator[Coordinate]:
        for geom in self.geoms:
            yield from geom.coordinates()

    def transform(self, func) -> "Geometry":
        return type(self)([g.transform(func) for g in self.geoms])

    def __len__(self) -> int:
        return len(self.geoms)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    @property
    def dimension(self) -> int:
        dims = [g.dimension for g in self.geoms if not g.is_empty]
        if dims:
            return max(dims)
        dims = [g.dimension for g in self.geoms]
        return max(dims) if dims else 0


class MultiPoint(_MultiGeometry):
    """A collection of POINT elements."""

    geom_type = "MULTIPOINT"
    element_type = Point

    @property
    def dimension(self) -> int:
        return 0


class MultiLineString(_MultiGeometry):
    """A collection of LINESTRING elements."""

    geom_type = "MULTILINESTRING"
    element_type = LineString

    @property
    def dimension(self) -> int:
        return 1


class MultiPolygon(_MultiGeometry):
    """A collection of POLYGON elements."""

    geom_type = "MULTIPOLYGON"
    element_type = Polygon

    @property
    def dimension(self) -> int:
        return 2


class GeometryCollection(_MultiGeometry):
    """A heterogeneous collection of geometries (the paper's MIXED type)."""

    geom_type = "GEOMETRYCOLLECTION"
    element_type = Geometry


MULTI_TYPES = {
    "MULTIPOINT": (MultiPoint, Point),
    "MULTILINESTRING": (MultiLineString, LineString),
    "MULTIPOLYGON": (MultiPolygon, Polygon),
}

BASIC_TYPES = {"POINT": Point, "LINESTRING": LineString, "POLYGON": Polygon}

ALL_TYPE_NAMES = (
    "POINT",
    "LINESTRING",
    "POLYGON",
    "MULTIPOINT",
    "MULTILINESTRING",
    "MULTIPOLYGON",
    "GEOMETRYCOLLECTION",
)


def flatten(geometry: Geometry) -> Iterator[Geometry]:
    """Yield the basic (non-collection) geometries contained in ``geometry``.

    Nested collections are traversed recursively.  Empty basic geometries are
    still yielded so callers can decide how to treat them.
    """
    if isinstance(geometry, _MultiGeometry):
        for element in geometry.geoms:
            yield from flatten(element)
    else:
        yield geometry


def empty_of_type(type_name: str) -> Geometry:
    """Return the EMPTY geometry of the requested OGC type name."""
    name = type_name.upper()
    if name in BASIC_TYPES:
        return BASIC_TYPES[name].empty()
    if name in MULTI_TYPES:
        return MULTI_TYPES[name][0].empty()
    if name == "GEOMETRYCOLLECTION":
        return GeometryCollection.empty()
    raise GeometryTypeError(f"unknown geometry type {type_name!r}")
