"""Interned geometry parsing: each distinct WKT/WKB text is parsed once.

The engine's hot paths re-read the same serialized geometries over and over:
every nested-loop join evaluation re-parses constant literals, the oracle
re-parses each table geometry when it builds follow-up databases, and
deduplication re-parses the WKTs of every reduced test case.  Parsing is
pure — the text fully determines the geometry, independent of dialect and
fault plan (dialect-specific validation happens *after* parsing, in
``FunctionRegistry._coerce_geometry``) — so one process-wide interning table
is safe: callers receive a shared, immutable ``Geometry`` instance.

Sharing instances has a second benefit: the relate engine's identity-keyed
memo (:mod:`repro.topology.relate`) hits whenever the *same objects* meet
again, which interning makes the common case.

The tables are bounded LRUs: long-running multi-campaign processes
(``spatter serve``) must not grow without bound, and evicting the least
recently used entry keeps the campaign's working set warm instead of the
clear-wholesale idiom's periodic cold restarts.  Hit/miss/eviction counters
are surfaced by ``repro.analysis.timing`` and the campaign's
``cache_stats``.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.geometry.model import Geometry
from repro.geometry.wkt import load_wkt as _parse_wkt

_WKT_INTERN: "OrderedDict[str, Geometry]" = OrderedDict()
_WKB_INTERN: "OrderedDict[str, Geometry]" = OrderedDict()
_INTERN_LIMIT = 65536

_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def set_geometry_cache_limit(limit: int) -> int:
    """Set the per-table entry cap; returns the previous cap.

    Existing entries beyond the new cap are evicted immediately (oldest
    first) so the bound holds from the moment it is configured.
    """
    global _INTERN_LIMIT
    previous = _INTERN_LIMIT
    _INTERN_LIMIT = max(1, int(limit))
    for table in (_WKT_INTERN, _WKB_INTERN):
        while len(table) > _INTERN_LIMIT:
            table.popitem(last=False)
            _STATS["evictions"] += 1
    return previous


def _remember(table: "OrderedDict[str, Geometry]", text: str, geometry: Geometry) -> None:
    if len(table) >= _INTERN_LIMIT:
        table.popitem(last=False)
        _STATS["evictions"] += 1
    table[text] = geometry


def load_wkt_interned(text: str) -> Geometry:
    """Parse WKT through the interning table.

    Identical inputs return the identical (shared) ``Geometry`` object; the
    text is only parsed on the first occurrence.  Parse errors are never
    cached — an invalid text raises every time, exactly like the raw parser.
    """
    cached = _WKT_INTERN.get(text)
    if cached is not None:
        _STATS["hits"] += 1
        _WKT_INTERN.move_to_end(text)
        return cached
    _STATS["misses"] += 1
    geometry = _parse_wkt(text)
    _remember(_WKT_INTERN, text, geometry)
    return geometry


def intern_parsed(text: str, geometry: Geometry) -> Geometry:
    """Register an already-parsed geometry under its serialized text.

    The reuse layer derives follow-up geometries by transforming parsed
    originals; registering the derived object under its dumped WKT lets the
    engine's later parses of that text (INSERT replay, query literals,
    deduplication) share the instance instead of re-parsing.  Callers must
    guarantee ``geometry`` is value-identical to ``load_wkt(text)`` — the
    derivation path only interns geometries whose coordinates round-trip
    exactly (integral, see ``repro.core.oracle``).

    Returns the canonical shared instance: if ``text`` is already interned
    the existing object wins, preserving the identity-sharing the rest of
    the process may already rely on.
    """
    cached = _WKT_INTERN.get(text)
    if cached is not None:
        _STATS["hits"] += 1
        _WKT_INTERN.move_to_end(text)
        return cached
    _STATS["misses"] += 1
    _remember(_WKT_INTERN, text, geometry)
    return geometry


def load_hex_wkb_interned(text: str) -> Geometry:
    """Parse hexadecimal WKB through the interning table (see above)."""
    from repro.geometry.wkb import load_hex_wkb as _parse_hex_wkb

    cached = _WKB_INTERN.get(text)
    if cached is not None:
        _STATS["hits"] += 1
        _WKB_INTERN.move_to_end(text)
        return cached
    _STATS["misses"] += 1
    geometry = _parse_hex_wkb(text)
    _remember(_WKB_INTERN, text, geometry)
    return geometry


def geometry_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current table sizes."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "evictions": _STATS["evictions"],
        "wkt_entries": len(_WKT_INTERN),
        "wkb_entries": len(_WKB_INTERN),
    }


def clear_geometry_cache() -> None:
    """Drop every interned geometry and reset the counters."""
    _WKT_INTERN.clear()
    _WKB_INTERN.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0
    _STATS["evictions"] = 0
