"""Interned geometry parsing: each distinct WKT/WKB text is parsed once.

The engine's hot paths re-read the same serialized geometries over and over:
every nested-loop join evaluation re-parses constant literals, the oracle
re-parses each table geometry when it builds follow-up databases, and
deduplication re-parses the WKTs of every reduced test case.  Parsing is
pure — the text fully determines the geometry, independent of dialect and
fault plan (dialect-specific validation happens *after* parsing, in
``FunctionRegistry._coerce_geometry``) — so one process-wide interning table
is safe: callers receive a shared, immutable ``Geometry`` instance.

Sharing instances has a second benefit: the relate engine's identity-keyed
memo (:mod:`repro.topology.relate`) hits whenever the *same objects* meet
again, which interning makes the common case.

The table follows the repository's cache idiom (bounded, cleared wholesale
on overflow) and exposes hit/miss counters surfaced by
``repro.analysis.timing``.
"""

from __future__ import annotations

from repro.geometry.model import Geometry
from repro.geometry.wkt import load_wkt as _parse_wkt

_WKT_INTERN: dict[str, Geometry] = {}
_WKB_INTERN: dict[str, Geometry] = {}
_INTERN_LIMIT = 65536

_STATS = {"hits": 0, "misses": 0}


def load_wkt_interned(text: str) -> Geometry:
    """Parse WKT through the interning table.

    Identical inputs return the identical (shared) ``Geometry`` object; the
    text is only parsed on the first occurrence.  Parse errors are never
    cached — an invalid text raises every time, exactly like the raw parser.
    """
    cached = _WKT_INTERN.get(text)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    geometry = _parse_wkt(text)
    if len(_WKT_INTERN) >= _INTERN_LIMIT:
        _WKT_INTERN.clear()
    _WKT_INTERN[text] = geometry
    return geometry


def load_hex_wkb_interned(text: str) -> Geometry:
    """Parse hexadecimal WKB through the interning table (see above)."""
    from repro.geometry.wkb import load_hex_wkb as _parse_hex_wkb

    cached = _WKB_INTERN.get(text)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    geometry = _parse_hex_wkb(text)
    if len(_WKB_INTERN) >= _INTERN_LIMIT:
        _WKB_INTERN.clear()
    _WKB_INTERN[text] = geometry
    return geometry


def geometry_cache_stats() -> dict[str, int]:
    """Hit/miss counters plus current table sizes."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "wkt_entries": len(_WKT_INTERN),
        "wkb_entries": len(_WKB_INTERN),
    }


def clear_geometry_cache() -> None:
    """Drop every interned geometry and reset the counters."""
    _WKT_INTERN.clear()
    _WKB_INTERN.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0
