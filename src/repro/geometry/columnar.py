"""Float-filtered columnar kernels for the vectorized batch execution core.

The topology engine (:mod:`repro.topology`) decides every predicate exactly
over :class:`fractions.Fraction` ordinates.  That exactness is the whole
point of the reproduction — the oracle must never blame a rounding artefact
on the engine under test — but Fraction arithmetic pays a gcd normalisation
per operation, and profiling shows point location and pairwise segment
screening dominating campaign time.

This module speeds those paths up with the classic *filter-and-fallback*
discipline of exact computational geometry (the semi-static filters of
Shewchuk-style predicates):

* every coordinate is mirrored into a float with a certified error bound;
* batch kernels evaluate the predicate expression over numpy arrays while
  propagating error bounds alongside the values;
* a sign is trusted only when the magnitude *certainly* exceeds the
  accumulated bound; every uncertain entry falls back to the original exact
  Fraction predicate.

The kernels therefore return results **identical** to their scalar
counterparts — the float layer only prunes work, it never decides a close
call.  NaN/inf propagation is safe by construction: any non-finite value
fails the certainty comparison and takes the exact fallback.

Everything is gated behind a process-wide switch
(:func:`set_vectorized_kernels`, mirroring the fast-clearance toggle in
:mod:`repro.topology.noding`) so campaigns can run batch-vs-scalar
differentially, and degrades to the scalar implementations when numpy is
not importable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

from repro.geometry.model import Coordinate
from repro.geometry.primitives import point_in_ring, point_on_segment

#: one float rounding step per operation is < 2**-53 relative; the bounds
#: below charge 2**-52 so the error arithmetic (itself computed in floats)
#: keeps a factor-two margin over the true accumulated error.
_EPS = 2.220446049250313e-16
#: absolute floor added to every bound: protects certainty decisions against
#: subnormal underflow of the relative term near zero.
_TINY = 1e-300

Segment = tuple[Coordinate, Coordinate]

# ---------------------------------------------------------------------------
# Process-wide switch (CampaignConfig.vectorized / --no-vectorized)
# ---------------------------------------------------------------------------

_VECTORIZED = True


def set_vectorized_kernels(enabled: bool) -> bool:
    """Toggle the batch kernels; returns the previous setting."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = bool(enabled)
    return previous


def vectorized_kernels_enabled() -> bool:
    """Whether the float-filtered batch kernels are active.

    False when toggled off (``--no-vectorized``) *or* when numpy is not
    available — callers never need to distinguish the two.
    """
    return _VECTORIZED and np is not None


_KERNEL_STATS = {
    "ring_batches": 0,
    "ring_points": 0,
    "ring_exact_boundary_checks": 0,
    "ring_exact_crossing_checks": 0,
    "segment_batches": 0,
    "segment_exact_checks": 0,
    "noding_prescreens": 0,
    "noding_pairs_total": 0,
    "noding_pairs_pruned": 0,
    "envelope_blocks": 0,
    "envelope_queries": 0,
    "distance_queries": 0,
}


def kernel_stats() -> dict[str, int]:
    """Counters proving the batch kernels actually engaged (for tests)."""
    return dict(_KERNEL_STATS)


def clear_kernel_stats() -> None:
    for key in _KERNEL_STATS:
        _KERNEL_STATS[key] = 0


# ---------------------------------------------------------------------------
# Error-tracked float arithmetic
# ---------------------------------------------------------------------------


def _to_float(value: Fraction) -> float:
    """Nearest float to an exact rational; overflow saturates to ±inf.

    A saturated value poisons every certainty test downstream (inf/NaN never
    exceed an inf bound), which routes the computation to the exact path —
    exactly the safe behaviour.
    """
    try:
        return float(value)
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")


def _conversion_error(values):
    """Certified bound on ``|float(x) - x|`` for converted values/arrays."""
    return _EPS * abs(values) + _TINY


def _sub(av, ae, bv, be):
    """(value, bound) of ``a - b`` for error-tracked floats or arrays."""
    v = av - bv
    return v, ae + be + _EPS * abs(v) + _TINY


def _add(av, ae, bv, be):
    """(value, bound) of ``a + b`` for error-tracked floats or arrays."""
    v = av + bv
    return v, ae + be + _EPS * abs(v) + _TINY


def _mul(av, ae, bv, be):
    """(value, bound) of ``a * b`` for error-tracked floats or arrays."""
    v = av * bv
    return v, ae * abs(bv) + be * abs(av) + ae * be + _EPS * abs(v) + _TINY


def _certain(values, bounds):
    """Boolean mask: the sign of each value is certain (NaN-safe)."""
    return abs(values) > bounds


# ---------------------------------------------------------------------------
# Edge tables (shared by the ring and segment locators)
# ---------------------------------------------------------------------------


class _EdgeTable:
    """Per-edge float mirrors (with bounds) of a fixed segment list."""

    def __init__(self, edges: Sequence[Segment]):
        self.edges = list(edges)
        n = len(self.edges)
        axv = np.empty(n)
        ayv = np.empty(n)
        bxv = np.empty(n)
        byv = np.empty(n)
        for i, (a, b) in enumerate(self.edges):
            axv[i] = _to_float(a.x)
            ayv[i] = _to_float(a.y)
            bxv[i] = _to_float(b.x)
            byv[i] = _to_float(b.y)
        self.axv, self.axe = axv, _conversion_error(axv)
        self.ayv, self.aye = ayv, _conversion_error(ayv)
        self.bxv, self.bxe = bxv, _conversion_error(bxv)
        self.byv, self.bye = byv, _conversion_error(byv)
        # Edge direction vector b - a.
        self.exv, self.exe = _sub(bxv, self.bxe, axv, self.axe)
        self.eyv, self.eye = _sub(byv, self.bye, ayv, self.aye)
        # Outward-rounded edge bounding boxes.
        self.minx_lo = np.minimum(axv - self.axe, bxv - self.bxe)
        self.maxx_hi = np.maximum(axv + self.axe, bxv + self.bxe)
        self.miny_lo = np.minimum(ayv - self.aye, byv - self.bye)
        self.maxy_hi = np.maximum(ayv + self.aye, byv + self.bye)

    def point_columns(self, points: Sequence[Coordinate]):
        n = len(points)
        pxv = np.empty(n)
        pyv = np.empty(n)
        for i, p in enumerate(points):
            pxv[i] = _to_float(p.x)
            pyv[i] = _to_float(p.y)
        return pxv, _conversion_error(pxv), pyv, _conversion_error(pyv)

    def resolve_columns(self, points: Sequence[Coordinate], columns):
        """Point columns for ``points``, reusing a prepared conversion."""
        if columns is not None and columns.arrays is not None:
            return columns.arrays
        return self.point_columns(points)

    def cross_matrix(self, pxv, pxe, pyv, pye):
        """Error-tracked ``cross(a, b, p)`` for every (point, edge) pair.

        ``cross(a, b, p) = (b.x-a.x)(p.y-a.y) - (b.y-a.y)(p.x-a.x)`` — zero
        exactly when ``p`` is collinear with the edge, and simultaneously
        the numerator of the ray-crossing abscissa test (see
        :meth:`RingLocator.locate_many`), so one matrix serves both passes.
        """
        qxv, qxe = _sub(pxv[:, None], pxe[:, None], self.axv[None, :], self.axe[None, :])
        qyv, qye = _sub(pyv[:, None], pye[:, None], self.ayv[None, :], self.aye[None, :])
        t1v, t1e = _mul(self.exv[None, :], self.exe[None, :], qyv, qye)
        t2v, t2e = _mul(self.eyv[None, :], self.eye[None, :], qxv, qxe)
        return _sub(t1v, t1e, t2v, t2e)

    def outside_bbox(self, pxv, pxe, pyv, pye):
        """Mask: the point is *certainly* outside the edge's bounding box."""
        return (
            (pxv[:, None] - pxe[:, None] > self.maxx_hi[None, :])
            | (pxv[:, None] + pxe[:, None] < self.minx_lo[None, :])
            | (pyv[:, None] - pye[:, None] > self.maxy_hi[None, :])
            | (pyv[:, None] + pye[:, None] < self.miny_lo[None, :])
        )


# ---------------------------------------------------------------------------
# Shared query-point conversions
# ---------------------------------------------------------------------------


class PointColumns:
    """One float conversion of a query-point batch, shared by every locator
    classifying the batch (a relate arrangement probes the same witness
    points against many rings and segment sets).

    ``face_interior`` optionally marks points the *caller* certifies to lie
    strictly inside an arrangement face covering every locator's segments
    and nodes (the relate engine's exact side-offset construction provides
    that certificate).  Such points are on no segment and equal to no
    vertex, so locators skip their boundary confirmations entirely — the
    decisions the certificate forecloses, nothing else.
    """

    def __init__(
        self,
        points: Sequence[Coordinate],
        face_interior: Sequence[bool] | None = None,
    ):
        self.points = list(points)
        if np is None:
            self.arrays = None
            self.face_interior = None
            return
        n = len(self.points)
        pxv = np.empty(n)
        pyv = np.empty(n)
        for i, p in enumerate(self.points):
            pxv[i] = _to_float(p.x)
            pyv[i] = _to_float(p.y)
        self.arrays = (pxv, _conversion_error(pxv), pyv, _conversion_error(pyv))
        self.face_interior = (
            np.asarray(face_interior, dtype=bool) if face_interior is not None else None
        )

    def subset(self, indices: Sequence[int]) -> "PointColumns":
        """Columns for a positional subset (no re-conversion)."""
        sub = PointColumns.__new__(PointColumns)
        sub.points = [self.points[i] for i in indices]
        if self.arrays is None:
            sub.arrays = None
            sub.face_interior = None
            return sub
        idx = np.asarray(indices, dtype=np.intp)
        pxv, pxe, pyv, pye = self.arrays
        sub.arrays = (pxv[idx], pxe[idx], pyv[idx], pye[idx])
        sub.face_interior = (
            self.face_interior[idx] if self.face_interior is not None else None
        )
        return sub


# ---------------------------------------------------------------------------
# Batch point-in-ring
# ---------------------------------------------------------------------------


def _exact_crossing(p: Coordinate, a: Coordinate, b: Coordinate) -> bool:
    """One edge's exact contribution to the ray-crossing parity.

    Equivalent to the crossing step of
    :func:`repro.geometry.primitives.point_in_ring` with the division
    cleared: there ``x_cross > p.x`` with
    ``x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x)``, and
    ``x_cross - p.x = cross(a, b, p) / (b.y - a.y)``, so under the straddle
    (which makes the denominator nonzero) the comparison is a sign match —
    the same bit without a Fraction division.
    """
    if (a.y > p.y) != (b.y > p.y):
        numerator = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
        if numerator == 0:
            return False
        return (numerator > 0) == (b.y > a.y)
    return False


class RingLocator:
    """Batch replacement for :func:`point_in_ring` over one fixed ring.

    ``locate_many`` returns, for each query point, exactly the string
    :func:`point_in_ring` would return.  Float arithmetic only prunes:

    * **boundary pass** — an edge whose point/edge cross product is
      certainly nonzero (or whose bounding box certainly excludes the
      point) cannot contain the point; every surviving edge is re-checked
      with the exact :func:`point_on_segment`;
    * **parity pass** — for an edge that certainly straddles the query's
      horizontal line, the crossing test ``x_cross > p.x`` reduces to
      ``sign(cross) == sign(b.y - a.y)`` (clear denominators in the
      abscissa comparison and the same cross product appears as the
      numerator); straddle-uncertain or sign-uncertain edges contribute
      their exact :func:`_exact_crossing` bit instead.
    """

    def __init__(self, ring: Sequence[Coordinate]):
        points = list(ring)
        self._ring = list(points)
        if points and points[0] != points[-1]:
            points = points + [points[0]]
        edges = list(zip(points, points[1:]))
        self._table = _EdgeTable(edges) if np is not None and edges else None

    def locate_many(
        self, points: Sequence[Coordinate], columns: "PointColumns | None" = None
    ) -> list[str]:
        table = self._table
        if table is None or not points:
            return [point_in_ring(p, self._ring) for p in points]
        _KERNEL_STATS["ring_batches"] += 1
        _KERNEL_STATS["ring_points"] += len(points)

        pxv, pxe, pyv, pye = table.resolve_columns(points, columns)
        crossv, crosse = table.cross_matrix(pxv, pxe, pyv, pye)
        cross_certain = _certain(crossv, crosse)
        boundary_candidate = ~cross_certain & ~table.outside_bbox(pxv, pxe, pyv, pye)
        face_interior = columns.face_interior if columns is not None else None
        if face_interior is not None:
            # Certified face-interior points cannot lie on the ring: drop
            # their boundary confirmations (their ε-offset construction makes
            # them ε-close to their own edge, i.e. always cross-uncertain).
            boundary_candidate &= ~face_interior[:, None]

        # Straddle test: does the edge cross the horizontal line through p?
        d1v, d1e = _sub(table.ayv[None, :], table.aye[None, :], pyv[:, None], pye[:, None])
        d2v, d2e = _sub(table.byv[None, :], table.bye[None, :], pyv[:, None], pye[:, None])
        straddle_known = _certain(d1v, d1e) & _certain(d2v, d2e)
        straddle = (d1v > 0) != (d2v > 0)
        counted = straddle_known & straddle & cross_certain
        # Under a certain straddle, b.y - a.y has the sign of d2 (= b.y - p.y).
        contributions = counted & ((crossv > 0) == (d2v > 0))
        parity_uncertain = ~straddle_known | (straddle_known & straddle & ~cross_certain)
        counts = contributions.sum(axis=1)

        edges = table.edges
        results: list[str] = []
        for i, p in enumerate(points):
            on_boundary = False
            for j in np.nonzero(boundary_candidate[i])[0]:
                _KERNEL_STATS["ring_exact_boundary_checks"] += 1
                a, b = edges[j]
                # Nodes frequently coincide with ring vertices: two exact
                # equality tests are far cheaper than the orientation test.
                if p == a or p == b or point_on_segment(p, a, b):
                    on_boundary = True
                    break
            if on_boundary:
                results.append("boundary")
                continue
            inside = int(counts[i]) & 1
            for j in np.nonzero(parity_uncertain[i])[0]:
                _KERNEL_STATS["ring_exact_crossing_checks"] += 1
                a, b = edges[j]
                if _exact_crossing(p, a, b):
                    inside ^= 1
            results.append("interior" if inside else "exterior")
        return results


# ---------------------------------------------------------------------------
# Batch point-on-any-segment
# ---------------------------------------------------------------------------


class SegmentsLocator:
    """Batch replacement for the ``point_on_segment`` loop over a fixed
    segment set (line-component interiors)."""

    def __init__(self, segments: Sequence[Segment]):
        self._segments = list(segments)
        self._table = _EdgeTable(self._segments) if np is not None and self._segments else None

    def contains_many(
        self, points: Sequence[Coordinate], columns: "PointColumns | None" = None
    ) -> list[bool]:
        table = self._table
        if table is None or not points:
            return [
                any(point_on_segment(p, a, b) for a, b in self._segments) for p in points
            ]
        _KERNEL_STATS["segment_batches"] += 1
        pxv, pxe, pyv, pye = table.resolve_columns(points, columns)
        crossv, crosse = table.cross_matrix(pxv, pxe, pyv, pye)
        candidate = ~_certain(crossv, crosse) & ~table.outside_bbox(pxv, pxe, pyv, pye)
        face_interior = columns.face_interior if columns is not None else None
        if face_interior is not None:
            # Certified face-interior points lie on no segment; skip their
            # exact confirmations.
            candidate &= ~face_interior[:, None]
        segments = self._segments
        results: list[bool] = []
        for i, p in enumerate(points):
            hit = False
            for j in np.nonzero(candidate[i])[0]:
                _KERNEL_STATS["segment_exact_checks"] += 1
                a, b = segments[j]
                if p == a or p == b or point_on_segment(p, a, b):
                    hit = True
                    break
            results.append(hit)
        return results


# ---------------------------------------------------------------------------
# Pairwise segment prescreen (noding)
# ---------------------------------------------------------------------------


def segment_pair_candidates(
    segments: Sequence[Segment],
) -> list[list[tuple[int, bool]]] | None:
    """Per-segment candidate partners ``(index, certainly_proper)`` for the
    exact intersection tests of the noder.

    Returns ``None`` when the kernels are off (caller keeps the full
    pairwise loop).  A pair may be pruned only when it *certainly* has no
    intersection point:

    * the outward-rounded bounding boxes are certainly disjoint (every
      intersection point lies in both boxes), or
    * both endpoints of one segment are certainly strictly on the same side
      of the other's supporting line (the whole segment then avoids that
      line, and every intersection point would have to lie on it).

    ``certainly_proper`` marks pairs whose endpoint orientations are all
    certainly strict with both segments straddling the other's line: such a
    pair has exactly one intersection point, strictly interior to both
    segments, and the caller may skip the exact orientation preamble and
    compute that point directly.  Segments sharing an endpoint always
    overlap in bbox and therefore stay (non-proper) candidates — their
    shared endpoints are genuine cut points.
    """
    if not vectorized_kernels_enabled() or len(segments) < 2:
        return None
    _KERNEL_STATS["noding_prescreens"] += 1
    n = len(segments)
    _KERNEL_STATS["noding_pairs_total"] += n * (n - 1)
    table = _EdgeTable(segments)

    # Certainly-disjoint bounding boxes, per ordered pair (i, j).
    disjoint = (
        (table.minx_lo[:, None] > table.maxx_hi[None, :])
        | (table.miny_lo[:, None] > table.maxy_hi[None, :])
    )
    disjoint = disjoint | disjoint.T

    # M1[i, j] / M2[i, j]: orientation of segment i's endpoints relative to
    # segment j's supporting line (the d1/d2 of segment_intersection).
    m1v, m1e = table.cross_matrix(table.axv, table.axe, table.ayv, table.aye)
    m2v, m2e = table.cross_matrix(table.bxv, table.bxe, table.byv, table.bye)
    pos1, neg1 = m1v > m1e, m1v < -m1e
    pos2, neg2 = m2v > m2e, m2v < -m2e
    same_side = (pos1 & pos2) | (neg1 & neg2)
    straddles = (pos1 & neg2) | (neg1 & pos2)
    proper = straddles & straddles.T

    reject = disjoint | same_side | same_side.T
    np.fill_diagonal(reject, True)
    candidate = ~reject
    _KERNEL_STATS["noding_pairs_pruned"] += int(reject.sum()) - n
    return [
        [(int(j), bool(proper[i, j])) for j in np.nonzero(row)[0]]
        for i, row in enumerate(candidate)
    ]


# ---------------------------------------------------------------------------
# Clearance prescreen (side-offset witness construction)
# ---------------------------------------------------------------------------


class ClearanceFilter:
    """Float prescreen for ``OffsetContext.min_clearance_sq``.

    The exact clearance kernel scans every node and every segment of an
    arrangement per midpoint query.  This filter computes, per candidate, a
    certified interval for its squared distance to the query midpoint and
    returns only the candidates whose interval can still reach the minimum
    positive clearance; the caller evaluates exactly those with the exact
    kernel, producing the identical rational minimum.

    Intervals are deliberately loose where case analysis would be needed:
    a segment's squared distance is bracketed by ``[distance-to-supporting-
    line, min(distance to either endpoint)]``, which holds for every
    position of the projection foot.  Candidates whose interval reaches
    zero are always kept — the exact kernel is what decides whether they
    are the excluded zero-distance incidences or a tiny positive minimum.
    """

    def __init__(self, segments: Sequence[Segment], nodes: Sequence[Coordinate]):
        self._ok = np is not None and (len(segments) > 0 or len(nodes) > 0)
        if not self._ok:
            return
        nxv = np.array([_to_float(p.x) for p in nodes])
        nyv = np.array([_to_float(p.y) for p in nodes])
        self._nxv, self._nxe = nxv, _conversion_error(nxv)
        self._nyv, self._nye = nyv, _conversion_error(nyv)
        saxv = np.array([_to_float(s[0].x) for s in segments])
        sayv = np.array([_to_float(s[0].y) for s in segments])
        sbxv = np.array([_to_float(s[1].x) for s in segments])
        sbyv = np.array([_to_float(s[1].y) for s in segments])
        self._saxv, self._saxe = saxv, _conversion_error(saxv)
        self._sayv, self._saye = sayv, _conversion_error(sayv)
        self._sbxv, self._sbxe = sbxv, _conversion_error(sbxv)
        self._sbyv, self._sbye = sbyv, _conversion_error(sbyv)
        self._sexv, self._sexe = _sub(sbxv, self._sbxe, saxv, self._saxe)
        self._seyv, self._seye = _sub(sbyv, self._sbye, sayv, self._saye)
        ex2 = _mul(self._sexv, self._sexe, self._sexv, self._sexe)
        ey2 = _mul(self._seyv, self._seye, self._seyv, self._seye)
        self._slen2v, self._slen2e = _add(*ex2, *ey2)

    @staticmethod
    def _squared_gap(dxv, dxe, dyv, dye):
        x2 = _mul(dxv, dxe, dxv, dxe)
        y2 = _mul(dyv, dye, dyv, dye)
        return _add(*x2, *y2)

    def candidates(
        self, a: Coordinate, b: Coordinate
    ) -> tuple[list[int], list[int]] | None:
        """Node / segment indices that may decide the minimum positive
        clearance of segment ``a``–``b``'s midpoint (``None``: scan all)."""
        batch = self.candidates_many([(a, b)])
        return None if batch is None else batch[0]

    def candidates_many(
        self, queries: Sequence[Segment]
    ) -> list[tuple[list[int], list[int]]] | None:
        """Batch :meth:`candidates` for many query segments at once.

        One numpy dispatch covers every midpoint query of an arrangement
        (the per-query path pays ~30 array-op dispatches each), broadcasting
        the candidate intervals to ``(queries, nodes)`` / ``(queries,
        segments)`` matrices.  Row ``i`` is exactly what :meth:`candidates`
        returns for ``queries[i]``.
        """
        if not self._ok or not queries:
            return None
        axv = np.array([_to_float(q[0].x) for q in queries])
        ayv = np.array([_to_float(q[0].y) for q in queries])
        bxv = np.array([_to_float(q[1].x) for q in queries])
        byv = np.array([_to_float(q[1].y) for q in queries])
        axe, aye = _conversion_error(axv), _conversion_error(ayv)
        bxe, bye = _conversion_error(bxv), _conversion_error(byv)
        sxv, sxe = _add(axv, axe, bxv, bxe)
        syv, sye = _add(ayv, aye, byv, bye)
        mxv, mxe = (sxv * 0.5)[:, None], (sxe * 0.5)[:, None]
        myv, mye = (syv * 0.5)[:, None], (sye * 0.5)[:, None]

        # Node intervals, (queries, nodes).
        ndxv, ndxe = _sub(mxv, mxe, self._nxv[None, :], self._nxe[None, :])
        ndyv, ndye = _sub(myv, mye, self._nyv[None, :], self._nye[None, :])
        nd2v, nd2e = self._squared_gap(ndxv, ndxe, ndyv, ndye)
        node_lo = nd2v - nd2e
        node_hi = nd2v + nd2e

        # Segment intervals, (queries, segments): [line distance,
        # min(endpoint distances)].
        vdxv, vdxe = _sub(mxv, mxe, self._saxv[None, :], self._saxe[None, :])
        vdyv, vdye = _sub(myv, mye, self._sayv[None, :], self._saye[None, :])
        da2v, da2e = self._squared_gap(vdxv, vdxe, vdyv, vdye)
        wdxv, wdxe = _sub(mxv, mxe, self._sbxv[None, :], self._sbxe[None, :])
        wdyv, wdye = _sub(myv, mye, self._sbyv[None, :], self._sbye[None, :])
        db2v, db2e = self._squared_gap(wdxv, wdxe, wdyv, wdye)
        t1v, t1e = _mul(vdxv, vdxe, self._seyv[None, :], self._seye[None, :])
        t2v, t2e = _mul(vdyv, vdye, self._sexv[None, :], self._sexe[None, :])
        crossv, crosse = _sub(t1v, t1e, t2v, t2e)
        cross_lo = np.maximum(np.abs(crossv) - crosse, 0.0)
        len2_hi = (self._slen2v + self._slen2e)[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            line_lo = (cross_lo * cross_lo) / len2_hi
        seg_lo = np.where(np.isfinite(line_lo), np.maximum(line_lo, 0.0), 0.0)
        seg_hi = np.minimum(da2v + da2e, db2v + db2e)

        # Per-query upper bound on the minimum positive clearance: the
        # smallest hi of any certainly-positive candidate.  Candidates above
        # it cannot be the minimum; everything else (including possible
        # zero-distance incidences) goes to the exact kernel.
        bound = np.full(len(queries), np.inf)
        if node_lo.shape[1]:
            positive_node_hi = np.where(node_lo > 0.0, node_hi, np.inf)
            bound = np.minimum(bound, positive_node_hi.min(axis=1))
        if seg_lo.shape[1]:
            positive_seg_hi = np.where(
                (seg_lo > 0.0) & np.isfinite(seg_hi), seg_hi, np.inf
            )
            bound = np.minimum(bound, positive_seg_hi.min(axis=1))

        results: list[tuple[list[int], list[int]]] = []
        for i in range(len(queries)):
            keep_nodes = np.nonzero(~(node_lo[i] > bound[i]))[0].tolist()
            keep_segments = np.nonzero(~(seg_lo[i] > bound[i]))[0].tolist()
            results.append((keep_nodes, keep_segments))
        return results


# ---------------------------------------------------------------------------
# Columnar envelopes (engine batch prefilter)
# ---------------------------------------------------------------------------


def envelope_float_box(envelope) -> tuple[float, float, float, float]:
    """Outward-rounded float box of an exact envelope, memoized per instance.

    ``(min_x_lo, min_y_lo, max_x_hi, max_y_hi)`` with each bound pushed
    outward by the certified conversion error, so a float comparison can
    only ever *keep* a candidate the exact bounds would keep.  Envelopes
    are immutable, and the reuse layer's geometry interner shares geometry
    instances — and therefore their envelope memos — across campaign
    rounds, so the four Fraction→float conversions happen once per
    distinct envelope rather than once per block build or probe.
    """
    memo = envelope._float_box
    if memo is None:
        minx = _to_float(envelope.min_x)
        miny = _to_float(envelope.min_y)
        maxx = _to_float(envelope.max_x)
        maxy = _to_float(envelope.max_y)
        memo = (
            minx - _conversion_error(minx),
            miny - _conversion_error(miny),
            maxx + _conversion_error(maxx),
            maxy + _conversion_error(maxy),
        )
        envelope._float_box = memo
    return memo


class EnvelopeBlock:
    """Outward-rounded float envelopes for a positional sequence of rows.

    The batch executor's analogue of
    :meth:`repro.engine.catalog.SpatialIndex.candidates`: built from the
    geometry column of a scanned row block, queried with an outer row's
    exact envelope, returns the positions that *may* satisfy an
    envelope-based prefilter.  The contract mirrors the R-tree exactly:

    * NULL rows are never candidates (every indexable predicate coerces its
      arguments before any fault hook can fire, so a NULL row's condition
      is never true and triggers nothing);
    * EMPTY geometries are *always* candidates (the index keeps its
      ``empty_rows`` alongside every tree hit);
    * everything else is pruned only on a *certain* reject.
    """

    def __init__(self, values: Sequence[object]):
        _KERNEL_STATS["envelope_blocks"] += 1
        self.positions: list[int] = []
        self.empty_positions: list[int] = []
        boxes: list[tuple[float, float, float, float]] = []
        for position, value in enumerate(values):
            if value is None:
                continue
            envelope = value.envelope()  # type: ignore[attr-defined]
            if envelope is None:
                self.empty_positions.append(position)
                continue
            self.positions.append(position)
            boxes.append(envelope_float_box(envelope))
        if np is not None and boxes:
            array = np.array(boxes)
            self.minx_lo = array[:, 0]
            self.miny_lo = array[:, 1]
            self.maxx_hi = array[:, 2]
            self.maxy_hi = array[:, 3]
            self._positions_array = np.array(self.positions, dtype=np.intp)
        else:
            self._positions_array = None

    def all_positions(self) -> list[int]:
        """Every non-NULL position (the no-envelope / non-geometry probe)."""
        return sorted(self.positions + self.empty_positions)

    def _query_box(self, envelope) -> tuple[float, float, float, float]:
        return envelope_float_box(envelope)

    def intersecting(self, envelope) -> list[int]:
        """Positions whose envelope may intersect ``envelope`` (plus empties).

        ``envelope=None`` (an EMPTY probe geometry) returns every non-NULL
        position, mirroring ``SpatialIndex.candidates(None)``.
        """
        _KERNEL_STATS["envelope_queries"] += 1
        if envelope is None:
            return self.all_positions()
        if self._positions_array is None:
            return self.all_positions()
        q_minx_lo, q_miny_lo, q_maxx_hi, q_maxy_hi = self._query_box(envelope)
        disjoint = (
            (self.minx_lo > q_maxx_hi)
            | (q_minx_lo > self.maxx_hi)
            | (self.miny_lo > q_maxy_hi)
            | (q_miny_lo > self.maxy_hi)
        )
        hits = self._positions_array[~disjoint].tolist()
        return sorted(hits + self.empty_positions)

    def within_distance(self, envelope, threshold: int) -> list[int]:
        """Positions whose bbox gap to ``envelope`` may be ≤ ``threshold``.

        The box-to-box gap lower-bounds the geometry distance, so a row may
        be pruned only when the gap is certainly larger than the threshold;
        the squared comparison keeps a 1e-9 relative margin over the few
        ulps the gap arithmetic can lose.  EMPTY rows are never pruned.
        """
        _KERNEL_STATS["distance_queries"] += 1
        if envelope is None or self._positions_array is None:
            return self.all_positions()
        q_minx_lo, q_miny_lo, q_maxx_hi, q_maxy_hi = self._query_box(envelope)
        zero = 0.0
        dx = np.maximum(zero, np.maximum(self.minx_lo - q_maxx_hi, q_minx_lo - self.maxx_hi))
        dy = np.maximum(zero, np.maximum(self.miny_lo - q_maxy_hi, q_miny_lo - self.maxy_hi))
        gap_sq = (dx * dx + dy * dy) * (1.0 - 1e-9)
        limit = float(threshold) * float(threshold)
        hits = self._positions_array[~(gap_sq > limit)].tolist()
        return sorted(hits + self.empty_positions)
