"""Well-Known Binary (WKB) reader and writer.

Real SDBMSs exchange geometries in WKB at least as often as in WKT (it is
the storage and wire format of PostGIS and MySQL), so the substrate provides
it too: the 2D subset matching the geometry model, in either byte order,
with EMPTY geometries encoded the way PostGIS emits them (NaN coordinates
for ``POINT EMPTY``, zero element counts for everything else).

Coordinates pass through IEEE-754 doubles, so a WKT → WKB → WKT round trip
is exact only for coordinates representable as doubles (integers and
binary fractions); Spatter's integer-only generation policy (Section 4.2 of
the paper) keeps every generated geometry inside that subset.
"""

from __future__ import annotations

import math
import struct
from typing import Iterator

from repro.errors import WKTParseError
from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

_TYPE_CODES = {
    "POINT": 1,
    "LINESTRING": 2,
    "POLYGON": 3,
    "MULTIPOINT": 4,
    "MULTILINESTRING": 5,
    "MULTIPOLYGON": 6,
    "GEOMETRYCOLLECTION": 7,
}
_CODE_TYPES = {code: name for name, code in _TYPE_CODES.items()}

BIG_ENDIAN = 0
LITTLE_ENDIAN = 1


class WKBParseError(WKTParseError):
    """Raised when a WKB byte string cannot be decoded."""


# ---------------------------------------------------------------------- writer
def dump_wkb(geometry: Geometry, byte_order: int = LITTLE_ENDIAN) -> bytes:
    """Serialise a geometry to WKB bytes."""
    if byte_order not in (BIG_ENDIAN, LITTLE_ENDIAN):
        raise ValueError("byte_order must be 0 (big endian) or 1 (little endian)")
    prefix = "<" if byte_order == LITTLE_ENDIAN else ">"
    body = bytearray()
    body.append(byte_order)
    body += struct.pack(prefix + "I", _TYPE_CODES[geometry.geom_type])
    body += _dump_body(geometry, prefix, byte_order)
    return bytes(body)


def _dump_coordinate(coordinate: Coordinate | None, prefix: str) -> bytes:
    if coordinate is None:
        return struct.pack(prefix + "dd", math.nan, math.nan)
    return struct.pack(prefix + "dd", float(coordinate.x), float(coordinate.y))


def _dump_ring(ring, prefix: str) -> bytes:
    data = struct.pack(prefix + "I", len(ring))
    for coordinate in ring:
        data += _dump_coordinate(coordinate, prefix)
    return data


def _dump_body(geometry: Geometry, prefix: str, byte_order: int) -> bytes:
    if isinstance(geometry, Point):
        return _dump_coordinate(geometry.coordinate, prefix)
    if isinstance(geometry, LineString):
        return _dump_ring(geometry.points, prefix)
    if isinstance(geometry, Polygon):
        if geometry.is_empty:
            return struct.pack(prefix + "I", 0)
        rings = list(geometry.rings())
        data = struct.pack(prefix + "I", len(rings))
        for ring in rings:
            data += _dump_ring(ring, prefix)
        return data
    if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        data = struct.pack(prefix + "I", len(geometry.geoms))
        for element in geometry.geoms:
            data += dump_wkb(element, byte_order)
        return data
    raise WKBParseError(f"cannot serialise geometry type {geometry.geom_type}")


# ---------------------------------------------------------------------- reader
class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise WKBParseError("unexpected end of WKB data")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def at_end(self) -> bool:
        return self.offset >= len(self.data)


def load_wkb(data: bytes) -> Geometry:
    """Decode WKB bytes into a :class:`Geometry`."""
    if not isinstance(data, (bytes, bytearray)):
        raise WKBParseError(f"WKB must be bytes, got {type(data).__name__}")
    reader = _Reader(bytes(data))
    geometry = _load_geometry(reader)
    if not reader.at_end():
        raise WKBParseError("trailing bytes after WKB geometry")
    return geometry


def _load_geometry(reader: _Reader) -> Geometry:
    byte_order = reader.take(1)[0]
    if byte_order not in (BIG_ENDIAN, LITTLE_ENDIAN):
        raise WKBParseError(f"invalid byte-order marker {byte_order}")
    prefix = "<" if byte_order == LITTLE_ENDIAN else ">"
    (type_code,) = struct.unpack(prefix + "I", reader.take(4))
    type_name = _CODE_TYPES.get(type_code)
    if type_name is None:
        raise WKBParseError(f"unknown WKB geometry type code {type_code}")

    if type_name == "POINT":
        coordinate = _load_coordinate(reader, prefix)
        return Point(coordinate) if coordinate is not None else Point.empty()
    if type_name == "LINESTRING":
        return LineString(list(_load_ring(reader, prefix)))
    if type_name == "POLYGON":
        (ring_count,) = struct.unpack(prefix + "I", reader.take(4))
        rings = [list(_load_ring(reader, prefix)) for _ in range(ring_count)]
        if not rings:
            return Polygon.empty()
        return Polygon(rings[0], rings[1:])
    # MULTI types and collections share the element-count layout.
    (count,) = struct.unpack(prefix + "I", reader.take(4))
    elements = [_load_geometry(reader) for _ in range(count)]
    container = {
        "MULTIPOINT": MultiPoint,
        "MULTILINESTRING": MultiLineString,
        "MULTIPOLYGON": MultiPolygon,
        "GEOMETRYCOLLECTION": GeometryCollection,
    }[type_name]
    return container(elements)


def _load_coordinate(reader: _Reader, prefix: str) -> Coordinate | None:
    x, y = struct.unpack(prefix + "dd", reader.take(16))
    if math.isnan(x) or math.isnan(y):
        return None
    return Coordinate(x, y)


def _load_ring(reader: _Reader, prefix: str) -> Iterator[Coordinate]:
    (count,) = struct.unpack(prefix + "I", reader.take(4))
    for _ in range(count):
        coordinate = _load_coordinate(reader, prefix)
        if coordinate is None:
            raise WKBParseError("NaN coordinate inside a coordinate sequence")
        yield coordinate


def dump_hex_wkb(geometry: Geometry, byte_order: int = LITTLE_ENDIAN) -> str:
    """WKB as an uppercase hexadecimal string (the psql display format)."""
    return dump_wkb(geometry, byte_order).hex().upper()


def load_hex_wkb(text: str) -> Geometry:
    """Decode a hexadecimal WKB string."""
    try:
        raw = bytes.fromhex(text.strip())
    except ValueError as error:
        raise WKBParseError(f"invalid hexadecimal WKB: {error}") from error
    return load_wkb(raw)
