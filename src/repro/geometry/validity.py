"""OGC-style semantic validity checks.

The random-shape strategy of the paper generates geometries that are valid at
the *syntax* level but possibly invalid at the *semantic* level (for example
``POLYGON((0 0,1 1,0 1,1 0,0 0))``, whose boundary self-intersects).  Real
SDBMSs reject such geometries with an error when a topological function is
applied; Spatter ignores those errors.  The MiniSDB engine uses this module
to decide when to raise :class:`~repro.errors.SemanticGeometryError`.
"""

from __future__ import annotations

from repro.geometry.model import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.primitives import (
    point_in_ring,
    ring_signed_area,
    segment_intersection,
)


def explain_invalidity(geometry: Geometry) -> str | None:
    """Return a human-readable reason the geometry is invalid, or None if valid."""
    if isinstance(geometry, Point):
        return None
    if isinstance(geometry, LineString):
        return _explain_linestring(geometry)
    if isinstance(geometry, Polygon):
        return _explain_polygon(geometry)
    if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        for index, element in enumerate(geometry.geoms):
            reason = explain_invalidity(element)
            if reason is not None:
                return f"element {index}: {reason}"
        if isinstance(geometry, MultiPolygon):
            return _explain_multipolygon(geometry)
        return None
    return None


def is_valid(geometry: Geometry) -> bool:
    """True if the geometry satisfies the OGC semantic validity rules."""
    return explain_invalidity(geometry) is None


def _explain_linestring(line: LineString) -> str | None:
    if line.is_empty:
        return None
    if len(line.points) < 2:
        return "a LINESTRING needs at least two points"
    if all(p == line.points[0] for p in line.points):
        return "a LINESTRING must have at least two distinct points"
    return None


def is_simple_linestring(line: LineString) -> bool:
    """True if a LINESTRING has no self-intersections.

    A closed line is allowed to share its start and end point; consecutive
    segments are allowed to share their common vertex.  This is the OGC
    ``IsSimple`` semantics used by ``ST_IsRing``.
    """
    if line.is_empty or len(line.points) < 2:
        return True
    segments = list(line.segments())
    count = len(segments)
    closed = line.is_closed
    for i in range(count):
        a1, a2 = segments[i]
        if a1 == a2:
            return False
        for j in range(i + 1, count):
            b1, b2 = segments[j]
            hits = segment_intersection(a1, a2, b1, b2)
            if not hits:
                continue
            if len(hits) > 1:
                return False
            hit = hits[0]
            if j == i + 1 and hit == a2:
                continue  # consecutive segments share their common vertex
            if closed and i == 0 and j == count - 1 and hit == a1:
                continue  # closed line shares its start/end point
            return False
    return True


def _ring_self_intersects(ring: list) -> bool:
    """True if a closed ring touches or crosses itself anywhere except at
    the shared endpoints of consecutive segments."""
    segments = list(zip(ring, ring[1:]))
    count = len(segments)
    for i in range(count):
        a1, a2 = segments[i]
        if a1 == a2:
            return True  # zero-length segment collapses the ring locally
        for j in range(i + 1, count):
            b1, b2 = segments[j]
            hits = segment_intersection(a1, a2, b1, b2)
            if not hits:
                continue
            adjacent = j == i + 1 or (i == 0 and j == count - 1)
            if len(hits) > 1:
                return True
            hit = hits[0]
            if adjacent:
                # Consecutive segments legitimately share one endpoint.
                shared = a2 if j == i + 1 else a1
                if hit != shared:
                    return True
            else:
                return True
    return False


def _explain_polygon(polygon: Polygon) -> str | None:
    if polygon.is_empty:
        return None
    for index, ring in enumerate(polygon.rings()):
        if len(set(ring)) < 3:
            return f"ring {index} has fewer than three distinct points"
        if _ring_self_intersects(ring):
            return f"ring {index} is self-intersecting"
        if ring_signed_area(ring) == 0:
            return f"ring {index} has zero area"
    exterior = polygon.exterior
    for index, hole in enumerate(polygon.holes):
        outside = [p for p in hole if point_in_ring(p, exterior) == "exterior"]
        if outside:
            return f"hole {index} lies outside the exterior ring"
        # Hole edges must not cross the exterior ring.
        for a, b in zip(hole, hole[1:]):
            for c, d in zip(exterior, exterior[1:]):
                hits = segment_intersection(a, b, c, d)
                if len(hits) > 1:
                    return f"hole {index} overlaps the exterior ring"
    return None


def _explain_multipolygon(multi: MultiPolygon) -> str | None:
    polygons = [p for p in multi.geoms if not p.is_empty]
    for i in range(len(polygons)):
        for j in range(i + 1, len(polygons)):
            if _polygons_interiors_overlap(polygons[i], polygons[j]):
                return f"polygons {i} and {j} have overlapping interiors"
    return None


def _polygons_interiors_overlap(a: Polygon, b: Polygon) -> bool:
    """Conservative interior-overlap test used only for validity reporting."""
    for p in a.exterior:
        if point_in_ring(p, b.exterior) == "interior" and all(
            point_in_ring(p, hole) != "interior" for hole in b.holes
        ):
            return True
    for p in b.exterior:
        if point_in_ring(p, a.exterior) == "interior" and all(
            point_in_ring(p, hole) != "interior" for hole in a.holes
        ):
            return True
    for s1 in zip(a.exterior, a.exterior[1:]):
        for s2 in zip(b.exterior, b.exterior[1:]):
            hits = segment_intersection(s1[0], s1[1], s2[0], s2[1])
            if len(hits) == 1 and not _is_shared_vertex(hits[0], a, b):
                # A proper boundary crossing implies interior overlap unless it
                # is a single shared vertex.
                if not _point_is_vertex(hits[0], a) or not _point_is_vertex(hits[0], b):
                    return True
    return False


def _point_is_vertex(p, polygon: Polygon) -> bool:
    return any(p == v for ring in polygon.rings() for v in ring)


def _is_shared_vertex(p, a: Polygon, b: Polygon) -> bool:
    return _point_is_vertex(p, a) and _point_is_vertex(p, b)
