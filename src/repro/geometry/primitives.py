"""Exact low-level geometric predicates and constructions.

Everything in this module operates on :class:`~repro.geometry.model.Coordinate`
values whose ordinates are :class:`fractions.Fraction`, so every predicate is
decided exactly — there is no epsilon anywhere.  The topology engine
(:mod:`repro.topology`) is built entirely on these primitives.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.geometry.model import Coordinate

#: Return values of :func:`orientation`.
CLOCKWISE = -1
COLLINEAR = 0
COUNTERCLOCKWISE = 1


def cross(o: Coordinate, a: Coordinate, b: Coordinate) -> Fraction:
    """Cross product of vectors ``o->a`` and ``o->b``."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def orientation(o: Coordinate, a: Coordinate, b: Coordinate) -> int:
    """Orientation of the ordered triple (o, a, b).

    Returns :data:`COUNTERCLOCKWISE`, :data:`CLOCKWISE`, or :data:`COLLINEAR`.
    """
    value = cross(o, a, b)
    if value > 0:
        return COUNTERCLOCKWISE
    if value < 0:
        return CLOCKWISE
    return COLLINEAR


def dot(o: Coordinate, a: Coordinate, b: Coordinate) -> Fraction:
    """Dot product of vectors ``o->a`` and ``o->b``."""
    return (a.x - o.x) * (b.x - o.x) + (a.y - o.y) * (b.y - o.y)


def squared_distance(a: Coordinate, b: Coordinate) -> Fraction:
    """Exact squared Euclidean distance between two coordinates."""
    return (a.x - b.x) ** 2 + (a.y - b.y) ** 2


def point_on_segment(p: Coordinate, a: Coordinate, b: Coordinate) -> bool:
    """True if point ``p`` lies on the closed segment ``a``–``b``.

    Degenerate segments (``a == b``) are handled: the test reduces to
    ``p == a``.
    """
    if a == b:
        return p == a
    if orientation(a, b, p) != COLLINEAR:
        return False
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def segment_point_squared_distance(p: Coordinate, a: Coordinate, b: Coordinate) -> Fraction:
    """Exact squared distance from point ``p`` to the closed segment ``a``–``b``."""
    if a == b:
        return squared_distance(p, a)
    length_sq = squared_distance(a, b)
    t = dot(a, b, p) / length_sq
    if t <= 0:
        return squared_distance(p, a)
    if t >= 1:
        return squared_distance(p, b)
    projection = Coordinate(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    return squared_distance(p, projection)


def segments_squared_distance(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> Fraction:
    """Exact squared distance between two closed segments."""
    if segments_intersect(a1, a2, b1, b2):
        return Fraction(0)
    candidates = (
        segment_point_squared_distance(a1, b1, b2),
        segment_point_squared_distance(a2, b1, b2),
        segment_point_squared_distance(b1, a1, a2),
        segment_point_squared_distance(b2, a1, a2),
    )
    return min(candidates)


def segments_intersect(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> bool:
    """True if the two closed segments share at least one point."""
    return bool(segment_intersection(a1, a2, b1, b2))


def segment_intersection(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> list[Coordinate]:
    """Intersection of two closed segments as a list of coordinates.

    * ``[]`` — the segments do not intersect.
    * ``[p]`` — the segments meet in a single point ``p``.
    * ``[p, q]`` — the segments overlap along the collinear segment ``p``–``q``
      (``p`` and ``q`` are the endpoints of the shared portion and are
      distinct).

    Degenerate (zero-length) segments are supported.
    """
    # Degenerate cases first.
    if a1 == a2 and b1 == b2:
        return [a1] if a1 == b1 else []
    if a1 == a2:
        return [a1] if point_on_segment(a1, b1, b2) else []
    if b1 == b2:
        return [b1] if point_on_segment(b1, a1, a2) else []

    d1 = orientation(b1, b2, a1)
    d2 = orientation(b1, b2, a2)
    d3 = orientation(a1, a2, b1)
    d4 = orientation(a1, a2, b2)

    if d1 == COLLINEAR and d2 == COLLINEAR and d3 == COLLINEAR and d4 == COLLINEAR:
        return _collinear_overlap(a1, a2, b1, b2)

    if d1 != d2 and d3 != d4:
        # Proper or touching crossing with a unique intersection point.
        point = _line_intersection_point(a1, a2, b1, b2)
        if point is not None:
            return [point]

    # Endpoint-touching cases (one endpoint lies on the other segment).
    touches = []
    for p in (a1, a2):
        if point_on_segment(p, b1, b2) and p not in touches:
            touches.append(p)
    for p in (b1, b2):
        if point_on_segment(p, a1, a2) and p not in touches:
            touches.append(p)
    if len(touches) >= 2:
        # Shared endpoints on collinear portions were handled above; two
        # distinct touch points can only happen when endpoints coincide.
        return touches[:2] if touches[0] != touches[1] else [touches[0]]
    return touches


def _line_intersection_point(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> Coordinate | None:
    """Unique intersection point of two segments known to cross, or None."""
    r_x, r_y = a2.x - a1.x, a2.y - a1.y
    s_x, s_y = b2.x - b1.x, b2.y - b1.y
    denominator = r_x * s_y - r_y * s_x
    if denominator == 0:
        return None
    t = ((b1.x - a1.x) * s_y - (b1.y - a1.y) * s_x) / denominator
    u = ((b1.x - a1.x) * r_y - (b1.y - a1.y) * r_x) / denominator
    if not (0 <= t <= 1 and 0 <= u <= 1):
        return None
    return Coordinate(a1.x + t * r_x, a1.y + t * r_y)


def _collinear_overlap(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> list[Coordinate]:
    """Overlap of two collinear segments as 0, 1, or 2 coordinates."""
    def key(c: Coordinate) -> tuple[Fraction, Fraction]:
        return (c.x, c.y)

    a_lo, a_hi = sorted((a1, a2), key=key)
    b_lo, b_hi = sorted((b1, b2), key=key)
    lo = max(a_lo, b_lo, key=key)
    hi = min(a_hi, b_hi, key=key)
    if key(lo) > key(hi):
        return []
    if lo == hi:
        return [lo]
    return [lo, hi]


def ring_signed_area(ring: Sequence[Coordinate]) -> Fraction:
    """Twice-signed-free signed area of a closed ring (shoelace formula).

    Positive for counter-clockwise rings, negative for clockwise rings.  The
    first and last coordinates may or may not coincide; both forms are
    handled.
    """
    if len(ring) < 3:
        return Fraction(0)
    points = list(ring)
    if points[0] == points[-1]:
        points = points[:-1]
    total = Fraction(0)
    for i, current in enumerate(points):
        nxt = points[(i + 1) % len(points)]
        total += current.x * nxt.y - nxt.x * current.y
    return total / 2


def ring_is_clockwise(ring: Sequence[Coordinate]) -> bool:
    """True if the ring winds clockwise (negative signed area)."""
    return ring_signed_area(ring) < 0


def point_in_ring(p: Coordinate, ring: Sequence[Coordinate]) -> str:
    """Locate a point relative to a simple closed ring.

    Returns ``"interior"``, ``"boundary"``, or ``"exterior"``.  Uses an exact
    crossing-number walk that treats vertices and horizontal edges carefully,
    so no perturbation is needed.
    """
    points = list(ring)
    if not points:
        return "exterior"
    if points[0] != points[-1]:
        points = points + [points[0]]

    # Boundary test first.
    for a, b in zip(points, points[1:]):
        if point_on_segment(p, a, b):
            return "boundary"

    # Crossing number with the standard half-open rule on the y interval.
    inside = False
    for a, b in zip(points, points[1:]):
        if (a.y > p.y) != (b.y > p.y):
            # x coordinate of the edge at height p.y
            t = (p.y - a.y) / (b.y - a.y)
            x_cross = a.x + t * (b.x - a.x)
            if x_cross > p.x:
                inside = not inside
    return "interior" if inside else "exterior"


def convex_hull(points: Iterable[Coordinate]) -> list[Coordinate]:
    """Convex hull of a point set (Andrew's monotone chain), CCW order.

    Returns the hull vertices without repeating the first point at the end.
    Collinear input collapses to the two extreme points; a single distinct
    point collapses to one coordinate.
    """
    unique = sorted(set(points), key=lambda c: (c.x, c.y))
    if len(unique) <= 2:
        return unique

    def build(seq: list[Coordinate]) -> list[Coordinate]:
        hull: list[Coordinate] = []
        for point in seq:
            while len(hull) >= 2 and cross(hull[-2], hull[-1], point) <= 0:
                hull.pop()
            hull.append(point)
        return hull

    lower = build(unique)
    upper = build(list(reversed(unique)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # Fully collinear input.
        return [unique[0], unique[-1]]
    return hull


def centroid_of_points(points: Sequence[Coordinate]) -> Coordinate | None:
    """Arithmetic mean of a coordinate sequence (None for empty input)."""
    points = list(points)
    if not points:
        return None
    n = len(points)
    sx = sum((p.x for p in points), Fraction(0))
    sy = sum((p.y for p in points), Fraction(0))
    return Coordinate(sx / n, sy / n)
