"""Geometry substrate: OGC simple-feature geometry model and WKT I/O.

This package provides the geometry objects every other layer builds on:

* :mod:`repro.geometry.model` — the ``Geometry`` class hierarchy (POINT,
  LINESTRING, POLYGON, the MULTI variants and GEOMETRYCOLLECTION), with
  exact rational coordinates.
* :mod:`repro.geometry.wkt` — Well-Known Text parsing and serialisation.
* :mod:`repro.geometry.primitives` — exact low-level predicates (orientation,
  segment intersection, point-in-ring, ...).
* :mod:`repro.geometry.validity` — OGC-style semantic validity checks.
* :mod:`repro.geometry.cache` — interned parsing: each distinct WKT/WKB text
  is parsed once per process and shared (``load_wkt`` below is the interned
  reader; the raw parser stays available as ``repro.geometry.wkt.load_wkt``).
"""

from repro.geometry.model import (
    Coordinate,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.cache import load_wkt_interned as load_wkt
from repro.geometry.wkt import dump_wkt

__all__ = [
    "Coordinate",
    "Geometry",
    "Point",
    "LineString",
    "Polygon",
    "MultiPoint",
    "MultiLineString",
    "MultiPolygon",
    "GeometryCollection",
    "load_wkt",
    "dump_wkt",
]
