"""Small statistics helpers for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def standard_deviation(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation, minimum and maximum of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics for a sample (all zeros for an empty sample)."""
    values = list(values)
    if not values:
        return Summary(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    return Summary(
        count=len(values),
        mean=mean(values),
        std=standard_deviation(values),
        minimum=min(values),
        maximum=max(values),
    )
