"""Measurement utilities used by the evaluation benchmarks.

* :mod:`repro.analysis.coverage` — a line-coverage tracer scoped to the
  engine/topology packages (the Table 5 and Figure 8(b,c) experiments);
* :mod:`repro.analysis.timing` — the Spatter-vs-SDBMS time split (Figure 7);
* :mod:`repro.analysis.stats` — small helpers for summarising repeated runs.
"""

from repro.analysis.coverage import CoverageReport, CoverageTracker
from repro.analysis.timing import TimeSplit, measure_campaign_time_split
from repro.analysis.stats import mean, summarize

__all__ = [
    "CoverageTracker",
    "CoverageReport",
    "TimeSplit",
    "measure_campaign_time_split",
    "mean",
    "summarize",
]
