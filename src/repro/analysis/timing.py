"""Run-time distribution measurement (Figure 7).

Figure 7 of the paper shows, for each SDBMS and for N ∈ {1, 10, 50, 100}
geometries per run, the total time Spatter spends versus the part of it
spent executing statements inside the SDBMS.  The campaign runner already
tracks both numbers; this module packages the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import CampaignConfig, TestingCampaign


@dataclass
class TimeSplit:
    """One Figure 7 data point."""

    dialect: str
    geometry_count: int
    spatter_seconds: float
    sdbms_seconds: float
    queries_run: int

    @property
    def sdbms_share(self) -> float:
        """Fraction of the total time spent inside the SDBMS."""
        if self.spatter_seconds == 0:
            return 0.0
        return self.sdbms_seconds / self.spatter_seconds


def measure_campaign_time_split(
    dialect: str,
    geometry_count: int,
    queries: int = 100,
    repeats: int = 3,
    seed: int = 0,
    emulate_release_under_test: bool = True,
) -> TimeSplit:
    """Average the Spatter/SDBMS time split over ``repeats`` runs.

    Mirrors the paper's methodology: each run generates one database of
    ``geometry_count`` geometries and evaluates ``queries`` random template
    queries; the experiment is repeated to absorb performance noise.
    """
    total_spatter = 0.0
    total_sdbms = 0.0
    total_queries = 0
    for repeat in range(repeats):
        campaign = TestingCampaign(
            CampaignConfig(
                dialect=dialect,
                geometry_count=geometry_count,
                queries_per_round=queries,
                seed=seed + repeat,
                emulate_release_under_test=emulate_release_under_test,
            )
        )
        result = campaign.run(rounds=1)
        total_spatter += result.total_seconds
        total_sdbms += result.sdbms_seconds
        total_queries += result.queries_run
    return TimeSplit(
        dialect=dialect,
        geometry_count=geometry_count,
        spatter_seconds=total_spatter / repeats,
        sdbms_seconds=total_sdbms / repeats,
        queries_run=total_queries // repeats,
    )
