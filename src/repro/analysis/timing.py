"""Run-time distribution measurement (Figure 7) and fast-path cache stats.

Figure 7 of the paper shows, for each SDBMS and for N ∈ {1, 10, 50, 100}
geometries per run, the total time Spatter spends versus the part of it
spent executing statements inside the SDBMS.  The campaign runner already
tracks both numbers; this module packages the sweep.

Since the execution fast-path layer landed, each measurement also carries
the aggregated cache counters (prepared-predicate cache, relate memo and
geometry interner hits/misses) so the time split can be read alongside how
much repeated work the caches absorbed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.campaign import CampaignConfig
from repro.core.parallel import run_campaign


@dataclass
class TimeSplit:
    """One Figure 7 data point."""

    #: Emulated system under test.
    dialect: str
    #: Geometries per generated database (the paper's *N*).
    geometry_count: int
    #: Average total Spatter wall-clock seconds per run.
    spatter_seconds: float
    #: Average seconds spent executing statements inside the SDBMS.
    sdbms_seconds: float
    #: Average template queries executed per run (exact per-repeat mean,
    #: like the two seconds fields — not floor-divided).
    queries_run: float
    #: Worker processes the campaign ran with (1 = serial driver).
    workers: int = 1
    #: Average seconds spent materialising databases (initial loads plus
    #: derived follow-ups) — the reuse layer's phase split, per-repeat mean.
    time_materialise: float = 0.0
    #: Average oracle-pass seconds net of materialisation (query execution
    #: and checking), per-repeat mean.
    time_execute: float = 0.0
    #: Cache counters averaged over the repeats (``prepared_*``,
    #: ``relate_*`` and ``interner_*`` hits/misses), so every field of a
    #: data point is a per-repeat mean and stays comparable across sweeps
    #: run with different ``repeats``.  Populated in both execution modes:
    #: the relate WKT memo, the geometry interner and the seed's
    #: ST_Contains prepared routing stay active with ``fast_path=False`` —
    #: only the gated layers (broad prepared caching, auto indexes, the
    #: clearance kernel) go quiet.
    cache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def sdbms_share(self) -> float:
        """Fraction of the total time spent inside the SDBMS."""
        if self.spatter_seconds == 0:
            return 0.0
        return self.sdbms_seconds / self.spatter_seconds

    def cache_hit_rate(self, layer: str) -> float:
        """Hit rate of one cache layer (``prepared``, ``relate`` or
        ``interner``); 0.0 when the layer saw no traffic."""
        hits = self.cache_stats.get(f"{layer}_hits", 0)
        misses = self.cache_stats.get(f"{layer}_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0


def measure_campaign_time_split(
    dialect: str,
    geometry_count: int,
    queries: int = 100,
    repeats: int = 3,
    seed: int = 0,
    emulate_release_under_test: bool = True,
    rounds: int = 1,
    workers: int = 1,
    fast_path: bool = True,
) -> TimeSplit:
    """Average the Spatter/SDBMS time split over ``repeats`` runs.

    Mirrors the paper's methodology: each run generates ``rounds`` databases
    of ``geometry_count`` geometries and evaluates ``queries`` random
    template queries per round; the experiment is repeated to absorb
    performance noise.  ``workers > 1`` routes the run through the parallel
    orchestrator (:mod:`repro.core.parallel`) so serial and sharded
    wall-clocks can be compared on the same workload.

    Every field of the returned :class:`TimeSplit` is a per-repeat mean:
    seconds, query counts and cache counters all divide by ``repeats``
    (historically seconds were averaged while query counts were
    floor-divided and cache counters summed, which made data points from
    sweeps with different ``repeats`` incomparable).
    """
    total_spatter = 0.0
    total_sdbms = 0.0
    total_queries = 0
    total_materialise = 0.0
    total_execute = 0.0
    caches: Counter[str] = Counter()
    for repeat in range(repeats):
        config = CampaignConfig(
            dialect=dialect,
            geometry_count=geometry_count,
            queries_per_round=queries,
            seed=seed + repeat,
            emulate_release_under_test=emulate_release_under_test,
            workers=workers,
            fast_path=fast_path,
        )
        result = run_campaign(config, rounds=rounds)
        total_spatter += result.total_seconds
        total_sdbms += result.sdbms_seconds
        total_queries += result.queries_run
        total_materialise += result.materialise_seconds
        total_execute += result.execute_seconds
        caches.update(result.cache_stats)
    return TimeSplit(
        dialect=dialect,
        geometry_count=geometry_count,
        spatter_seconds=total_spatter / repeats,
        sdbms_seconds=total_sdbms / repeats,
        queries_run=total_queries / repeats,
        workers=workers,
        time_materialise=total_materialise / repeats,
        time_execute=total_execute / repeats,
        cache_stats={key: value / repeats for key, value in caches.items()},
    )
