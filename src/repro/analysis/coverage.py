"""Line-coverage measurement scoped to the system under test.

The paper's Table 5 and Figure 8(b,c) report gcov line coverage of PostGIS
and GEOS under different test-generation strategies.  The reproduction's
analogue of PostGIS is :mod:`repro.engine` (SQL parsing, planning, indexes,
the function registry) and the analogue of GEOS is :mod:`repro.topology`
plus :mod:`repro.geometry` plus :mod:`repro.functions` (the geometry
library).  This module measures executed source lines of those packages with
a ``sys.settrace`` hook, and reports them against the number of executable
lines so percentages are comparable across configurations.
"""

from __future__ import annotations

import ast as python_ast
import os
import sys
from dataclasses import dataclass, field

import repro

_PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: Component groups: name -> package sub-directories relative to repro/.
COMPONENT_GROUPS: dict[str, tuple[str, ...]] = {
    "engine": ("engine",),
    "geometry-library": ("topology", "geometry", "functions"),
}


def _python_files(subdirectories: tuple[str, ...]) -> list[str]:
    files = []
    for subdirectory in subdirectories:
        root = os.path.join(_PACKAGE_ROOT, subdirectory)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return sorted(files)


def _executable_lines(path: str) -> set[int]:
    """Line numbers of executable statements in a source file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = python_ast.parse(source)
    lines: set[int] = set()
    for node in python_ast.walk(tree):
        if isinstance(node, (python_ast.stmt, python_ast.excepthandler)):
            if isinstance(node, (python_ast.FunctionDef, python_ast.AsyncFunctionDef, python_ast.ClassDef, python_ast.Module)):
                continue
            lines.add(node.lineno)
    return lines


@dataclass
class CoverageReport:
    """Covered/executable line counts per component group."""

    covered: dict[str, set] = field(default_factory=dict)
    executable: dict[str, int] = field(default_factory=dict)

    def line_coverage(self, group: str) -> float:
        total = self.executable.get(group, 0)
        if total == 0:
            return 0.0
        return 100.0 * len(self.covered.get(group, set())) / total

    def covered_lines(self, group: str) -> int:
        return len(self.covered.get(group, set()))

    def merged_with(self, other: "CoverageReport") -> "CoverageReport":
        """Union of two reports (the "Unit Tests + Spatter" row of Table 5)."""
        merged = CoverageReport(executable=dict(self.executable))
        for group in set(self.covered) | set(other.covered):
            merged.covered[group] = set(self.covered.get(group, set())) | set(
                other.covered.get(group, set())
            )
        for group, total in other.executable.items():
            merged.executable.setdefault(group, total)
        return merged

    def as_rows(self) -> list[tuple[str, int, int, float]]:
        """(group, covered, executable, percentage) rows for reporting."""
        rows = []
        for group in sorted(self.executable):
            rows.append(
                (
                    group,
                    self.covered_lines(group),
                    self.executable[group],
                    self.line_coverage(group),
                )
            )
        return rows


class CoverageTracker:
    """A context manager that records executed lines of the tracked packages."""

    def __init__(self, groups: dict[str, tuple[str, ...]] | None = None):
        self.groups = groups or COMPONENT_GROUPS
        self._files_to_group: dict[str, str] = {}
        self._executable_totals: dict[str, int] = {}
        for group, subdirectories in self.groups.items():
            total = 0
            for path in _python_files(subdirectories):
                self._files_to_group[path] = group
                total += len(_executable_lines(path))
            self._executable_totals[group] = total
        self._covered: dict[str, set] = {group: set() for group in self.groups}
        self._previous_trace = None

    # --------------------------------------------------------------- tracing
    def _trace(self, frame, event, arg):
        if event == "call":
            filename = frame.f_code.co_filename
            if filename in self._files_to_group:
                return self._trace_lines
            return None
        return None

    def _trace_lines(self, frame, event, arg):
        if event == "line":
            filename = frame.f_code.co_filename
            group = self._files_to_group.get(filename)
            if group is not None:
                self._covered[group].add((filename, frame.f_lineno))
        return self._trace_lines

    def __enter__(self) -> "CoverageTracker":
        # Coverage runs measure what the engine *executes*; process-global
        # memos (relate, canonicalization, interned parsing) warmed by
        # earlier work would let the tracked workload skip whole code paths
        # and make percentages incomparable across configurations — the
        # same reason the benchmarks clear these caches between runs.
        from repro.core.canonical import clear_canonical_cache
        from repro.geometry.cache import clear_geometry_cache
        from repro.topology.relate import clear_relate_cache

        clear_relate_cache()
        clear_canonical_cache()
        clear_geometry_cache()
        self._previous_trace = sys.gettrace()
        sys.settrace(self._trace)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        sys.settrace(self._previous_trace)

    # ---------------------------------------------------------------- report
    def report(self) -> CoverageReport:
        return CoverageReport(
            covered={group: set(values) for group, values in self._covered.items()},
            executable=dict(self._executable_totals),
        )

    def snapshot_percentages(self) -> dict[str, float]:
        """Current coverage percentage per group (used for coverage-over-time)."""
        report = self.report()
        return {group: report.line_coverage(group) for group in self.groups}
