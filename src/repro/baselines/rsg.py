"""The random-shape-only generator baseline (RSG).

The paper's ablation (Section 5.4, Figure 8) compares the geometry-aware
generator (random-shape + derivative strategies) against a baseline that
only uses the random-shape strategy.  In this reproduction the baseline is
simply a campaign configuration with the derivative strategy disabled, so
both configurations share every other pipeline component.
"""

from __future__ import annotations

from repro.core.campaign import CampaignConfig


def random_shape_campaign_config(base: CampaignConfig | None = None) -> CampaignConfig:
    """A copy of ``base`` with the derivative strategy switched off."""
    base = base or CampaignConfig()
    return CampaignConfig(
        dialect=base.dialect,
        bug_ids=base.bug_ids,
        emulate_release_under_test=base.emulate_release_under_test,
        geometry_count=base.geometry_count,
        table_count=base.table_count,
        queries_per_round=base.queries_per_round,
        use_derivative_strategy=False,
        seed=base.seed,
    )
