"""The random-shape-only generator baseline (RSG).

The paper's ablation (Section 5.4, Figure 8) compares the geometry-aware
generator (random-shape + derivative strategies) against a baseline that
only uses the random-shape strategy.  In this reproduction the baseline is
simply a campaign configuration with the derivative strategy disabled, so
both configurations share every other pipeline component.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.campaign import CampaignConfig


def random_shape_campaign_config(base: CampaignConfig | None = None) -> CampaignConfig:
    """A copy of ``base`` with the derivative strategy switched off.

    ``dataclasses.replace`` keeps every other field — scenario selection,
    sharding, fault profile — identical, so the two arms of the generator
    ablation differ in the generator alone.
    """
    base = base or CampaignConfig()
    return replace(base, use_derivative_strategy=False)
