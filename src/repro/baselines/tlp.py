"""Ternary Logic Partitioning (TLP) adapted to the spatial join template.

TLP (Rigger & Su, OOPSLA 2020) derives three partitioning queries from an
original query — rows where a predicate is TRUE, FALSE, and NULL — and
checks that their result sizes sum to the size of the unpartitioned query.
The paper uses TLP as the state-of-the-art relational baseline and shows it
misses most spatial logic bugs because the *same* (incorrect) predicate
evaluation is used in all partitions (Section 1 and Table 4).

For the spatial join template the partitioning looks like::

    total      = SELECT COUNT(*) FROM t1, t2
    true_part  = SELECT COUNT(*) FROM t1, t2 WHERE p(t1.g, t2.g)
    false_part = SELECT COUNT(*) FROM t1, t2 WHERE NOT p(t1.g, t2.g)
    null_part  = SELECT COUNT(*) FROM t1, t2 WHERE p(t1.g, t2.g) IS NULL

and the oracle checks ``true_part + false_part + null_part == total``.

The four partitioning queries are built as typed IR plans
(:mod:`repro.core.qir`) derived from the template query's predicate — the
original, its :class:`~repro.core.qir.Not` negation and its
:class:`~repro.core.qir.IsNull` lift — and rendered per executing backend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EngineCrash, ReproError
from repro.backends.base import Capabilities
from repro.core.generator import DatabaseSpec
from repro.core.qir import IsNull, Not, Select, TableRef, count_query, predicate_call, render
from repro.core.queries import QueryTemplate, TopologicalQuery
from repro.engine.database import SpatialDatabase


@dataclass
class TLPFinding:
    """The three partitions did not sum to the unpartitioned count."""

    query: TopologicalQuery
    total: int
    true_part: int
    false_part: int
    null_part: int


@dataclass
class TLPOutcome:
    findings: list[TLPFinding] = field(default_factory=list)
    queries_run: int = 0
    errors_ignored: int = 0


class TLPOracle:
    """Checks the ternary partitioning property on one system."""

    def __init__(self, database_factory=None, rng: random.Random | None = None, backend=None):
        """Construct from a connection factory or a ``repro.backends``
        backend (TLP only needs plain query execution, so any adapter
        qualifies)."""
        capabilities = None
        if database_factory is None:
            if backend is None:
                raise ValueError("TLPOracle needs a database_factory or a backend")
            database_factory = backend.open_session
            capabilities = backend.capabilities()
        self.database_factory = database_factory
        #: render target for the partition queries; a bare factory is the
        #: in-process engine, whose capabilities the session dialect implies.
        self.capabilities = capabilities
        self.rng = rng or random.Random()

    def _materialise(self, spec: DatabaseSpec) -> SpatialDatabase:
        database = self.database_factory()
        for statement in spec.create_statements():
            database.execute(statement)
        return database

    @staticmethod
    def partition_irs(query: TopologicalQuery) -> dict[str, Select]:
        """The four COUNT query plans of one TLP check."""
        predicate = predicate_call(
            query.predicate,
            query.table_a,
            query.table_b,
            column=query.geometry_column,
            distance=query.distance if query.uses_distance else None,
        )
        sources = (TableRef(query.table_a), TableRef(query.table_b))
        return {
            "total": count_query(sources),
            "true": count_query(sources, where=predicate),
            "false": count_query(sources, where=Not(predicate)),
            "null": count_query(sources, where=IsNull(predicate)),
        }

    @classmethod
    def partition_queries(cls, query: TopologicalQuery, target: Any = None) -> dict[str, str]:
        """The four COUNT queries rendered for one backend (default: canonical)."""
        return {
            name: render(ir, target) for name, ir in cls.partition_irs(query).items()
        }

    def check(self, spec: DatabaseSpec, query_count: int = 10) -> TLPOutcome:
        """Run TLP checks over random template queries."""
        outcome = TLPOutcome()
        try:
            database = self._materialise(spec)
        except (EngineCrash, ReproError):
            outcome.errors_ignored += 1
            return outcome
        template = QueryTemplate(database.dialect, self.rng)
        tables = spec.table_names()
        for _ in range(query_count):
            query = template.random_query(tables, include_distance_predicates=False)
            outcome.queries_run += 1
            finding = self.check_single(database, query)
            if finding is not None:
                outcome.findings.append(finding)
        return outcome

    def check_single(
        self, database: SpatialDatabase, query: TopologicalQuery
    ) -> TLPFinding | None:
        """One TLP check; returns a finding when the partition sums disagree."""
        target = self.capabilities or Capabilities.from_dialect(database.dialect)
        queries = self.partition_queries(query, target)
        try:
            total = database.query_value(queries["total"])
            true_part = database.query_value(queries["true"])
            false_part = database.query_value(queries["false"])
            null_part = database.query_value(queries["null"])
        except (EngineCrash, ReproError):
            return None
        if true_part + false_part + null_part != total:
            return TLPFinding(
                query=query,
                total=total,
                true_part=true_part,
                false_part=false_part,
                null_part=null_part,
            )
        return None
