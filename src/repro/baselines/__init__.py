"""Baseline oracles and generators the paper compares Spatter against.

* :mod:`repro.baselines.rsg` — the self-constructed random-shape-only
  generator baseline of Section 5.4 (Figure 8);
* :mod:`repro.baselines.differential` — cross-system differential testing
  (Table 4's "P. vs. M." and "P. vs. D." columns);
* :mod:`repro.baselines.tlp` — Ternary Logic Partitioning adapted to the
  spatial join template (Table 4's "TLP" column);
* :mod:`repro.baselines.index_oracle` — differential testing between index
  and sequential scans within one system (Table 4's "Index" column);
* :mod:`repro.baselines.format_differential` — differential testing of the
  GeoJSON conversion layer (the paper's Section 7 GDAL finding).
"""

from repro.baselines.differential import DifferentialOracle
from repro.baselines.format_differential import (
    PAPER_EMPTY_POLYGON_DOCUMENT,
    FormatDifferentialOracle,
)
from repro.baselines.index_oracle import IndexToggleOracle
from repro.baselines.rsg import random_shape_campaign_config
from repro.baselines.tlp import TLPOracle

__all__ = [
    "DifferentialOracle",
    "FormatDifferentialOracle",
    "PAPER_EMPTY_POLYGON_DOCUMENT",
    "IndexToggleOracle",
    "TLPOracle",
    "random_shape_campaign_config",
]
