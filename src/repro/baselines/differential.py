"""Cross-system differential testing.

The classic oracle for relational DBMS testing: run the same statements on
two systems and flag differing outputs.  Section 5.3 of the paper explains
why this is weak for SDBMSs — functions implemented in only one system
cannot be compared at all, shared third-party libraries (GEOS) make both
systems wrong in the same way, and legitimately different function
definitions produce false alarms.  All three effects are reproduced here:

* queries using a predicate unsupported by either dialect are *inapplicable*;
* GEOS-mechanism bugs are active in both GEOS-backed dialects, so their
  outputs agree and the discrepancy is invisible;
* dialect differences in validation (strict vs. lenient) can make the
  comparison error out, which the oracle has to ignore.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import EngineCrash, ReproError
from repro.backends import BackendSession, create_backend
from repro.core.generator import DatabaseSpec
from repro.core.queries import QueryTemplate, TopologicalQuery
from repro.engine.dialects import default_fault_profile, get_dialect


@dataclass
class DifferentialFinding:
    """Two systems returned different counts for the same statements."""

    query: TopologicalQuery
    count_a: int
    count_b: int
    dialect_a: str
    dialect_b: str


@dataclass
class DifferentialOutcome:
    findings: list[DifferentialFinding] = field(default_factory=list)
    inapplicable_queries: int = 0
    errors_ignored: int = 0
    queries_run: int = 0


class DifferentialOracle:
    """Compares two emulated systems on the same generated database."""

    def __init__(
        self,
        dialect_a: str,
        dialect_b: str,
        bug_ids_a: tuple[str, ...] | None = None,
        bug_ids_b: tuple[str, ...] | None = None,
        emulate_release_under_test: bool = True,
        rng: random.Random | None = None,
        backend_a: str = "inprocess",
        backend_b: str = "inprocess",
    ):
        """``backend_a``/``backend_b`` are execution-backend registry names
        (``repro.backends``); the classic same-engine cross-*dialect*
        comparison is the default, but either side can run on any adapter
        (e.g. ``backend_b="sqlite"`` for a cross-*backend* comparison)."""
        self.dialect_a = dialect_a
        self.dialect_b = dialect_b
        self.bug_ids_a = bug_ids_a
        self.bug_ids_b = bug_ids_b
        self.emulate = emulate_release_under_test
        self.rng = rng or random.Random()
        self.backend_a = backend_a
        self.backend_b = backend_b

    def _backend(self, dialect: str, bug_ids: tuple[str, ...] | None, backend: str):
        if bug_ids is None:
            bug_ids = tuple(default_fault_profile(dialect)) if self.emulate else ()
        return create_backend(backend, dialect=dialect, bug_ids=tuple(bug_ids))

    def comparable_predicates(self) -> list[str]:
        """Predicates both dialects document (the only comparable ones)."""
        a = set(get_dialect(self.dialect_a).topological_predicates())
        b = set(get_dialect(self.dialect_b).topological_predicates())
        return sorted(a & b)

    def check(self, spec: DatabaseSpec, query_count: int = 10) -> DifferentialOutcome:
        """Run random comparable queries over the same spec on both systems."""
        outcome = DifferentialOutcome()
        comparable = set(self.comparable_predicates())

        backend_a = self._backend(self.dialect_a, self.bug_ids_a, self.backend_a)
        backend_b = self._backend(self.dialect_b, self.bug_ids_b, self.backend_b)
        capabilities_a = backend_a.capabilities()
        capabilities_b = backend_b.capabilities()
        try:
            database_a = self._materialise(backend_a, spec)
            database_b = self._materialise(backend_b, spec)
        except (EngineCrash, ReproError):
            outcome.errors_ignored += 1
            return outcome

        template_a = QueryTemplate(database_a.dialect, self.rng)
        tables = spec.table_names()
        for _ in range(query_count):
            query = template_a.random_query(tables, include_distance_predicates=False)
            if query.predicate not in comparable:
                outcome.inapplicable_queries += 1
                continue
            outcome.queries_run += 1
            try:
                # One query plan, rendered dialect-exactly for each system.
                count_a = database_a.query_value(query.render(capabilities_a))
                count_b = database_b.query_value(query.render(capabilities_b))
            except (EngineCrash, ReproError):
                outcome.errors_ignored += 1
                continue
            if count_a != count_b:
                outcome.findings.append(
                    DifferentialFinding(
                        query=query,
                        count_a=count_a,
                        count_b=count_b,
                        dialect_a=self.dialect_a,
                        dialect_b=self.dialect_b,
                    )
                )
        return outcome

    def _materialise(self, backend, spec: DatabaseSpec) -> BackendSession:
        database = backend.open_session()
        for statement in spec.create_statements():
            database.execute(statement)
        return database

    # ------------------------------------------------------------- analysis
    def can_observe_bug(self, bug) -> bool:
        """Ground-truth reachability analysis for the Table 4 comparison.

        A cross-system comparison can only reveal a bug if (1) the buggy
        functions exist in both dialects, and (2) the bug is *not* shared by
        both systems through a common library (GEOS), and (3) the bug targets
        one of the two compared systems at all.
        """
        from repro.engine import faults

        dialect_a = get_dialect(self.dialect_a)
        dialect_b = get_dialect(self.dialect_b)
        both_geos = dialect_a.geos_backed and dialect_b.geos_backed
        if bug.component == faults.COMPONENT_GEOS and both_geos:
            return False
        targeted = {
            faults.COMPONENT_GEOS: ("postgis", "duckdb_spatial"),
            faults.COMPONENT_POSTGIS: ("postgis",),
            faults.COMPONENT_DUCKDB: ("duckdb_spatial",),
            faults.COMPONENT_MYSQL: ("mysql",),
            faults.COMPONENT_SQLSERVER: ("sqlserver",),
        }.get(bug.component, ())
        if self.dialect_a not in targeted and self.dialect_b not in targeted:
            return False
        if not bug.functions:
            return True
        comparable = set(self.comparable_predicates())
        return any(function in comparable for function in bug.functions if function.startswith("st_"))
