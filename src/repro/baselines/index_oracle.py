"""The Index oracle: differential testing between access paths.

Within one system, the same query must return the same rows whether the
planner uses a sequential scan or a spatial index (GiST) scan.  The paper
uses this oracle as a baseline ("Index" column of Table 4) and notes that it
only helps when the test case actually exercises the index — which is why it
can in principle find the two index-related bugs but nothing else.

Connections handed to this oracle should be opened with
``connect(..., fast_path=False, vectorized=False)``: its whole point is to
compare the two scan paths of the *seed* execution engine, so the
fast-path layer's envelope prefilters and auto-built indexes — and the
batch executor's columnar pipelines — must stay out of the picture.
(``IndexToggleOracle`` enforces this defensively by switching any
fast-path- or vectorization-enabled connection its factory returns back to
the reference execution mode.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import EngineCrash, ReproError
from repro.backends.base import Capabilities
from repro.core.generator import DatabaseSpec
from repro.core.queries import QueryTemplate, TopologicalQuery
from repro.engine.database import SpatialDatabase


@dataclass
class IndexFinding:
    """Sequential scan and index scan returned different counts."""

    query: TopologicalQuery
    count_seqscan: int
    count_index: int


@dataclass
class IndexOutcome:
    findings: list[IndexFinding] = field(default_factory=list)
    queries_run: int = 0
    errors_ignored: int = 0


class IndexToggleOracle:
    """Runs every query twice: with sequential scans and with index scans."""

    def __init__(self, database_factory=None, rng: random.Random | None = None, backend=None):
        """Construct from a connection factory or a ``repro.backends``
        backend.  A backend must declare planner-toggle support in its
        capabilities — the seqscan/index switch is this oracle's entire
        mechanism, and silently running both "paths" on a backend that
        ignores ``SET enable_seqscan`` would report a vacuously clean
        result."""
        if database_factory is None:
            if backend is None:
                raise ValueError("IndexToggleOracle needs a database_factory or a backend")
            if not backend.capabilities().supports_planner_toggles:
                raise ValueError(
                    f"backend {backend.name!r} has no seqscan/index planner toggle; "
                    "the Index oracle cannot drive it"
                )
            database_factory = backend.open_session
        self.database_factory = database_factory
        self.rng = rng or random.Random()

    def _materialise(self, spec: DatabaseSpec, geometry_column: str = "g") -> SpatialDatabase:
        database = self.database_factory()
        if getattr(database, "fast_path", False):
            # The Index oracle compares the seed engine's two scan paths;
            # disable the fast-path planner features on this connection so
            # the only index machinery in play is the one it toggles itself.
            database.fast_path = False
            database.executor.fast_path = False
            database.registry.fast_path = False
        if getattr(database, "vectorized", False):
            # Same reasoning for the batch executor: both scan paths must be
            # the seed engine's row-at-a-time plans, not batch pipelines.
            database.vectorized = False
            database.executor.vectorized = False
        for statement in spec.create_statements():
            database.execute(statement)
        for table in spec.table_names():
            database.execute(
                f"CREATE INDEX idx_{table} ON {table} USING GIST ({geometry_column})"
            )
        return database

    def check(self, spec: DatabaseSpec, query_count: int = 10) -> IndexOutcome:
        """Compare seq-scan and index-scan counts for random template queries."""
        outcome = IndexOutcome()
        try:
            database = self._materialise(spec)
        except (EngineCrash, ReproError):
            outcome.errors_ignored += 1
            return outcome
        template = QueryTemplate(database.dialect, self.rng)
        tables = spec.table_names()
        for _ in range(query_count):
            query = template.random_query(tables, include_distance_predicates=False)
            outcome.queries_run += 1
            finding = self.check_single(database, query)
            if finding is not None:
                outcome.findings.append(finding)
        return outcome

    def check_single(
        self, database: SpatialDatabase, query: TopologicalQuery
    ) -> IndexFinding | None:
        """One comparison; returns a finding when the two paths disagree."""
        # The oracle only drives planner-toggle backends (the in-process
        # engine), but the SQL still goes through the IR renderer so every
        # query producer shares one rendering path.
        sql = query.render(Capabilities.from_dialect(database.dialect))
        try:
            database.execute("SET enable_seqscan = true")
            count_seqscan = database.query_value(sql)
            database.execute("SET enable_seqscan = false")
            count_index = database.query_value(sql)
            database.execute("SET enable_seqscan = true")
        except (EngineCrash, ReproError):
            return None
        if count_seqscan != count_index:
            return IndexFinding(
                query=query, count_seqscan=count_seqscan, count_index=count_index
            )
        return None
