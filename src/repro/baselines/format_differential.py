"""Format-conversion differential oracle (the paper's GDAL/GeoJSON finding).

AEI validates topological query results; it deliberately does not exercise
the file reading/conversion layer (Section 7, *Limitations of AEI*).  The
paper reports that the one conversion-layer bug they found — DuckDB Spatial
returning NULL for the GeoJSON document ``{"type": "Polygon",
"coordinates": []}`` instead of ``POLYGON EMPTY`` — was detected by
*differential* testing of the conversion functions across SDBMSs.

This module reproduces that oracle: every geometry of a workload is
serialised to GeoJSON and parsed back through each emulated system's
conversion behaviour; systems that disagree about the round-tripped geometry
(or return NULL where others return a geometry) produce a finding.  The
emulated DuckDB Spatial conversion reproduces the released GDAL behaviour
the paper observed, so the known finding is rediscovered deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.canonical import canonicalize
from repro.errors import ReproError
from repro.geometry import load_wkt
from repro.geometry.geojson import dump_geojson, load_geojson
from repro.geometry.model import Geometry, Polygon

#: The exact document from the paper's Section 7 discussion.
PAPER_EMPTY_POLYGON_DOCUMENT = '{"type":"Polygon","coordinates":[]}'


@dataclass
class FormatFinding:
    """Two systems round-tripped the same GeoJSON document differently."""

    document: str
    dialect_a: str
    dialect_b: str
    result_a: str | None
    result_b: str | None

    def describe(self) -> str:
        return (
            f"{self.dialect_a} reads {self.document!r} as {self.result_a!r} "
            f"but {self.dialect_b} reads it as {self.result_b!r}"
        )


@dataclass
class FormatComparisonOutcome:
    """All findings of one format-differential run."""

    findings: list[FormatFinding] = field(default_factory=list)
    documents_checked: int = 0
    errors_ignored: int = 0

    def found_empty_polygon_bug(self) -> bool:
        """True if the paper's known GeoJSON NULL finding was rediscovered."""
        return any(
            finding.result_a is None or finding.result_b is None
            for finding in self.findings
        )


def read_geojson_as(dialect: str, document: str) -> Geometry | None:
    """Parse a GeoJSON document with the conversion behaviour of one system.

    The emulated DuckDB Spatial reader reproduces the released GDAL
    behaviour the paper reports: a Polygon with an empty coordinate array
    yields NULL instead of ``POLYGON EMPTY``.  Every other dialect follows
    the specification.
    """
    geometry = load_geojson(document)
    if dialect.lower() == "duckdb_spatial":
        if isinstance(geometry, Polygon) and geometry.is_empty:
            return None
    return geometry


class FormatDifferentialOracle:
    """Compare GeoJSON conversion behaviour between two emulated systems."""

    def __init__(self, dialect_a: str = "postgis", dialect_b: str = "duckdb_spatial"):
        self.dialect_a = dialect_a
        self.dialect_b = dialect_b

    def check_document(self, document: str, outcome: FormatComparisonOutcome) -> None:
        """Round-trip one GeoJSON document through both systems and compare."""
        outcome.documents_checked += 1
        try:
            geometry_a = read_geojson_as(self.dialect_a, document)
            geometry_b = read_geojson_as(self.dialect_b, document)
        except ReproError:
            outcome.errors_ignored += 1
            return
        wkt_a = None if geometry_a is None else canonicalize(geometry_a).wkt
        wkt_b = None if geometry_b is None else canonicalize(geometry_b).wkt
        if wkt_a != wkt_b:
            outcome.findings.append(
                FormatFinding(
                    document=document,
                    dialect_a=self.dialect_a,
                    dialect_b=self.dialect_b,
                    result_a=wkt_a,
                    result_b=wkt_b,
                )
            )

    def run(self, wkts: Iterable[str], extra_documents: Sequence[str] = ()) -> FormatComparisonOutcome:
        """Round-trip a workload of WKT geometries plus raw GeoJSON documents.

        WKT inputs are serialised to GeoJSON by the reference writer first,
        which is how the paper compared systems: same logical geometry, same
        interchange document, different readers.
        """
        outcome = FormatComparisonOutcome()
        for wkt in wkts:
            try:
                document = dump_geojson(load_wkt(wkt))
            except ReproError:
                outcome.errors_ignored += 1
                continue
            self.check_document(document, outcome)
        for document in extra_documents:
            self.check_document(document, outcome)
        return outcome
