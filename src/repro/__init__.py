"""Spatter reproduction: finding logic bugs in spatial database engines via
Affine Equivalent Inputs (Deng, Mang, Zhang, Rigger -- SIGMOD 2024).

The package is organised in layers:

* :mod:`repro.geometry` -- OGC geometry model, WKT, exact primitives;
* :mod:`repro.topology` -- DE-9IM relate engine, named predicates, measures;
* :mod:`repro.functions` -- spatial editing/accessor/affine functions;
* :mod:`repro.engine` -- MiniSDB, the in-process spatial SQL engine standing
  in for PostGIS / MySQL / DuckDB Spatial / SQL Server, with dialect
  emulation and the injected-bug catalog;
* :mod:`repro.core` -- Spatter itself: geometry-aware generation, affine
  equivalent input construction, canonicalization, the AEI oracle, the
  campaign runner, and the parallel sharded orchestrator
  (:mod:`repro.core.parallel`);
* :mod:`repro.baselines` -- the comparison oracles of Table 4 (differential,
  TLP, index toggling) and the random-shape-only generator;
* :mod:`repro.analysis` -- coverage and timing measurement for the
  evaluation benchmarks.

Quick start::

    from repro import connect, TestingCampaign, CampaignConfig

    campaign = TestingCampaign(CampaignConfig(dialect="postgis", seed=1))
    result = campaign.run(rounds=5)
    print(result.summary())
"""

from repro.engine import BUG_CATALOG, FaultPlan, InjectedBug, SpatialDatabase, connect
from repro.engine.dialects import available_dialects, get_dialect
from repro.core import (
    AEIOracle,
    AffineTransformation,
    CampaignResult,
    GeneratorConfig,
    GeometryAwareGenerator,
    ParallelCampaign,
    TestingCampaign,
    canonicalize,
    random_affine_transformation,
    run_campaign,
)
from repro.core.campaign import CampaignConfig
from repro.geometry import dump_wkt, load_wkt

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "connect",
    "SpatialDatabase",
    "FaultPlan",
    "InjectedBug",
    "BUG_CATALOG",
    "get_dialect",
    "available_dialects",
    "load_wkt",
    "dump_wkt",
    "canonicalize",
    "AffineTransformation",
    "random_affine_transformation",
    "GeometryAwareGenerator",
    "GeneratorConfig",
    "AEIOracle",
    "TestingCampaign",
    "ParallelCampaign",
    "run_campaign",
    "CampaignConfig",
    "CampaignResult",
]
